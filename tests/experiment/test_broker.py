"""The HTTP broker: lease/retry protocol units (injected clock, no
sleeping), the HTTP transport round trip, and the BrokerBackend's
end-to-end integration with BatchRunner.

The chaos half of the story — a worker SIGKILL'd mid-task recovering
via lease expiry — lives in ``test_recovery.py``; this module pins the
protocol the recovery rests on.
"""

from __future__ import annotations

import json

import pytest

from repro.experiment import (
    BackendError,
    BatchRunner,
    BrokerBackend,
    BrokerClient,
    SerialBackend,
)
from repro.experiment.backends import (
    BROKER_TOKEN_ENV_VAR,
    BrokerAuthError,
    BrokerUnavailable,
    task_envelope,
)
from repro.experiment.broker import BrokerQueue, bucket_key, start_broker
from repro.experiment.worker import BrokerQueueClient, drain

from _helpers import FAST_SPEC


def envelopes(*ids: str, lease_s: float = 5.0, max_attempts: int = 3) -> list:
    return [
        task_envelope(task_id, {"cell": task_id}, lease_s=lease_s,
                      max_attempts=max_attempts)
        for task_id in ids
    ]


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def queue(clock: FakeClock) -> BrokerQueue:
    return BrokerQueue(lease_s=5.0, max_attempts=3, time_fn=clock)


class TestBrokerQueueProtocol:
    """The in-memory state machine, clock injected — no real time."""

    def test_claim_is_exclusive_and_ordered(self, queue):
        queue.submit(envelopes("j-00001", "j-00000"))
        first = queue.claim()
        assert first is not None and first["id"] == "j-00000"  # id order
        second = queue.claim()
        assert second is not None and second["id"] == "j-00001"
        assert queue.claim() is None  # both leased: nothing to hand out

    def test_claim_respects_match_prefix(self, queue):
        queue.submit(envelopes("mine-00000", "theirs-00000"))
        claimed = queue.claim(match="mine-")
        assert claimed is not None and claimed["id"] == "mine-00000"
        assert queue.claim(match="mine-") is None
        # The foreign task is still claimable by its own drainers.
        other = queue.claim(match="theirs-")
        assert other is not None and other["id"] == "theirs-00000"

    def test_result_pickup_annotates_and_survives_rereads(self, queue):
        queue.submit(envelopes("j-00000"))
        queue.claim()
        assert queue.result({"id": "j-00000", "result": {"ok": 1}})
        response = queue.collect(["j-00000"])
        [envelope] = response["results"]
        assert envelope["result"] == {"ok": 1}
        assert envelope["attempts"] == 0  # annotated by the broker
        # Collection is non-destructive: a submitter whose HTTP response
        # was lost can simply ask again.  The final cancel purges.
        assert queue.collect(["j-00000"])["results"] == [envelope]
        queue.cancel(["j-00000"])
        assert queue.collect(["j-00000"])["results"] == []
        assert queue.stats()["results"] == 0

    def test_lease_expiry_requeues_with_attempts_bumped(self, queue, clock):
        queue.submit(envelopes("j-00000", lease_s=5.0))
        assert queue.claim() is not None
        clock.now += 4.0
        assert queue.claim() is None  # lease still live: not claimable
        clock.now += 2.0  # past the 5 s lease
        reclaimed = queue.claim()
        assert reclaimed is not None and reclaimed["attempts"] == 1
        assert queue.stats()["claimed"] == 1

    def test_heartbeat_extends_the_lease(self, queue, clock):
        queue.submit(envelopes("j-00000", lease_s=5.0))
        queue.claim()
        for _ in range(4):  # 16 s of heartbeats against a 5 s lease
            clock.now += 4.0
            assert queue.heartbeat("j-00000")
        assert queue.claim() is None  # never expired
        assert not queue.heartbeat("j-99999")  # unknown claim

    def test_retry_budget_exhaustion_synthesizes_error(self, queue, clock):
        queue.submit(envelopes("j-00000", lease_s=5.0, max_attempts=2))
        for _ in range(2):
            assert queue.claim() is not None
            clock.now += 6.0
        # Second expiry burned the budget: no more claims, an error
        # envelope naming the task and the attempt count instead.
        assert queue.claim() is None
        [envelope] = queue.collect(["j-00000"])["results"]
        assert envelope["error"] is not None
        assert "j-00000" in envelope["error"]
        assert "2 time(s)" in envelope["error"]
        assert envelope["attempts"] == 2

    def test_late_result_from_expired_worker_completes_the_task(
        self, queue, clock
    ):
        """A slow-but-alive worker whose lease expired still finishes the
        task: determinism makes its result byte-identical to whatever a
        re-claimant would produce, so the broker takes it."""
        queue.submit(envelopes("j-00000", lease_s=5.0))
        queue.claim()
        clock.now += 6.0  # expired: task requeued on next sweep
        assert queue.result({"id": "j-00000", "result": {"ok": 1}})
        assert queue.claim() is None  # requeued copy was cancelled
        assert queue.collect(["j-00000"])["results"][0]["result"] == {"ok": 1}

    def test_cancel_withdraws_a_submission(self, queue):
        queue.submit(envelopes("j-00000", "j-00001"))
        queue.claim()
        assert queue.cancel(["j-00000", "j-00001"]) == 2
        assert queue.claim() is None
        # Outcomes for cancelled (now unknown) ids are refused, so dead
        # submissions cannot accumulate results forever.
        assert not queue.result({"id": "j-00000", "result": {}})

    def test_collect_reports_backlog_counts(self, queue):
        queue.submit(envelopes("j-00000", "j-00001", "j-00002"))
        queue.claim()
        response = queue.collect(["j-00000", "j-00001", "j-00002"])
        assert response == {"results": [], "pending": 2, "claimed": 1}

    def test_prefix_collect_is_ack_based(self, queue):
        """The submitter's real protocol: address the submission by id
        prefix, re-receive anything not yet acked (a lost response costs
        nothing), and have acked results dropped broker-side."""
        queue.submit(envelopes("job-00000", "job-00001", "other-00000"))
        queue.claim(match="job-")
        queue.result({"id": "job-00000", "result": {"ok": 1}})
        first = queue.collect(match="job-")
        assert [env["id"] for env in first["results"]] == ["job-00000"]
        assert first["pending"] == 1  # job-00001; other- is not counted
        # Unacked: the same result is re-sent (the response may have
        # been lost on the wire)...
        assert queue.collect(match="job-")["results"] == first["results"]
        # ...until the next request acks it, which drops it for good.
        assert queue.collect(match="job-", ack=["job-00000"])["results"] == []
        assert queue.stats()["results"] == 0

    def test_abandoned_submission_is_garbage_collected(self, clock):
        """A submitter killed before its cancel leaves tasks and results
        behind; once nothing has touched them for ttl_s they are dropped
        — a long-lived shared broker must not grow forever, and workers
        must stop being handed a dead submission's tasks."""
        queue = BrokerQueue(lease_s=5.0, ttl_s=100.0, time_fn=clock)
        queue.submit(envelopes("dead-00000", "dead-00001"))
        queue.claim()
        assert queue.result({"id": "dead-00000", "result": {"ok": 1}})
        clock.now += 101.0  # nobody collects, heartbeats, or claims
        stats = queue.stats()
        assert stats["pending"] == stats["claimed"] == stats["results"] == 0
        assert queue.claim() is None
        # A *live* submission is refreshed by its submitter's polling
        # and never comes close to the horizon.
        queue.submit(envelopes("live-00000"))
        for _ in range(3):
            clock.now += 60.0
            queue.collect(["live-00000"])  # each poll tick touches it
        assert queue.stats()["pending"] == 1


class TestPollBackoff:
    """Idle-poll throttling: a shared broker must not be hammered at a
    flat 20 Hz by tenants with nothing to do."""

    def test_grace_then_exponential_growth_to_the_cap(self):
        from repro.experiment.backends import PollBackoff

        backoff = PollBackoff(0.05, 2.0, grace=2)
        delays = [backoff.next_delay() for _ in range(12)]
        # Jitter is a uniform factor in [0.5, 1.0]: bounds, not exact values.
        for delay in delays[:2]:  # grace window: flat base rate
            assert 0.025 <= delay <= 0.05
        assert delays[4] > delays[2]  # then growth...
        for delay in delays[-3:]:  # ...saturating at the cap
            assert 1.0 <= delay <= 2.0

    def test_progress_resets_to_the_base(self):
        from repro.experiment.backends import PollBackoff

        backoff = PollBackoff(0.05, 2.0, grace=0)
        for _ in range(10):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() <= 0.05

    def test_cap_never_exceeded_even_with_a_tiny_base(self):
        from repro.experiment.backends import PollBackoff

        backoff = PollBackoff(0.001, 0.5, grace=0)
        assert all(backoff.next_delay() <= 0.5 for _ in range(64))


class TestSubmissionBuckets:
    """Per-submission-prefix bucketing: the multi-tenant scaling fix."""

    def test_bucket_key_is_the_id_up_to_the_final_dash(self):
        assert bucket_key("job-00042") == "job-"
        assert bucket_key("a1b2-c3d4-00000") == "a1b2-c3d4-"
        assert bucket_key("nodash") == "nodash"

    def test_stats_counts_buckets(self, queue):
        queue.submit(envelopes("alpha-00000", "alpha-00001", "beta-00000"))
        assert queue.stats()["buckets"] == 2
        assert not queue.stats()["durable"]

    def test_tenants_are_isolated_end_to_end(self, queue):
        """Two interleaved submissions: claims, results and collects
        scoped by prefix never observe each other."""
        queue.submit(envelopes("alpha-00000", "beta-00000", "alpha-00001"))
        assert queue.claim(match="beta-")["id"] == "beta-00000"
        queue.result({"id": "beta-00000", "result": {"ok": "b"}})
        alpha = queue.collect(match="alpha-")
        assert alpha == {"results": [], "pending": 2, "claimed": 0}
        beta = queue.collect(match="beta-")
        assert [e["id"] for e in beta["results"]] == ["beta-00000"]
        assert beta["pending"] == 0 and beta["claimed"] == 0

    def test_cancel_of_one_tenant_leaves_the_other_whole(self, queue):
        queue.submit(envelopes("alpha-00000", "beta-00000"))
        assert queue.cancel(["alpha-00000"]) == 1
        assert queue.stats()["buckets"] == 1  # emptied bucket dropped
        assert queue.claim(match="beta-")["id"] == "beta-00000"

    def test_coarse_match_spans_buckets(self, queue):
        """A prefix shorter than a full submission key still reaches
        every bucket it addresses — claim order stays global id order."""
        queue.submit(envelopes("run1-00000", "run2-00000"))
        assert queue.claim(match="run")["id"] == "run1-00000"
        assert queue.claim(match="run")["id"] == "run2-00000"
        response = queue.collect(match="run")
        assert response["claimed"] == 2


class TestBrokerAuth:
    """The shared-secret header: what lets a broker bind beyond localhost."""

    @pytest.fixture
    def server(self, monkeypatch):
        monkeypatch.delenv(BROKER_TOKEN_ENV_VAR, raising=False)
        server = start_broker(lease_s=30.0, token="s3cret")
        yield server
        server.shutdown()
        server.server_close()

    def test_missing_token_is_refused_with_401(self, server):
        client = BrokerClient(server.url)  # env is clean: no token sent
        with pytest.raises(BrokerAuthError, match="refused"):
            client.stats()

    def test_wrong_token_is_refused_with_401(self, server):
        client = BrokerClient(server.url, token="wr0ng")
        with pytest.raises(BrokerAuthError, match="refused"):
            client.submit(envelopes("a-00000"))

    def test_matching_token_round_trips(self, server):
        client = BrokerClient(server.url, token="s3cret")
        assert client.submit(envelopes("a-00000")) == 1
        task = client.claim(match="a-", worker="t")
        assert task is not None and task["id"] == "a-00000"
        assert client.result({"id": "a-00000", "result": {"ok": 1}})
        assert client.collect(["a-00000"])["results"][0]["result"] == {"ok": 1}

    def test_token_defaults_from_the_environment(self, server, monkeypatch):
        """Export REPRO_BROKER_TOKEN and every client — submitter,
        worker, spawned drainer — is armed without code changes."""
        monkeypatch.setenv(BROKER_TOKEN_ENV_VAR, "s3cret")
        assert BrokerClient(server.url).stats()["pending"] == 0

    def test_auth_error_is_not_swallowed_as_an_outage(self):
        """BrokerAuthError must not be a ConnectionError: retry loops
        treat those as transient, but a 401 never heals by waiting."""
        assert not issubclass(BrokerAuthError, ConnectionError)
        assert issubclass(BrokerAuthError, PermissionError)

    def test_unauthenticated_worker_refuses_to_run(self, server):
        with pytest.raises(BrokerAuthError):
            drain(BrokerQueueClient(server.url), exit_when_empty=True)

    def test_unauthenticated_submitter_refuses_to_run(self, server):
        backend = BrokerBackend(server.url, workers=1, timeout_s=30.0)
        with pytest.raises(BackendError, match="token"):
            backend.run([FAST_SPEC.to_dict()])


class TestBrokerHTTP:
    """The same protocol through a real socket."""

    @pytest.fixture
    def server(self):
        server = start_broker(lease_s=30.0)
        yield server
        server.shutdown()
        server.server_close()

    def test_round_trip(self, server):
        client = BrokerClient(server.url)
        assert client.submit(envelopes("h-00000")) == 1
        task = client.claim(match="h-", worker="test")
        assert task is not None and task["id"] == "h-00000"
        assert client.heartbeat("h-00000")
        assert client.result({"id": "h-00000", "result": {"ok": 1}})
        response = client.collect(["h-00000"])
        assert response["results"][0]["result"] == {"ok": 1}
        assert client.cancel(["h-00000"]) == 0  # nothing pending/claimed...
        stats = client.stats()
        # ...and the cancel purged the collected result from the tables.
        assert stats["pending"] == stats["claimed"] == stats["results"] == 0

    def test_unknown_endpoint_is_an_error(self, server):
        client = BrokerClient(server.url)
        with pytest.raises(BrokerUnavailable, match="404"):
            client._request("/quantum", {})

    def test_requests_reuse_one_keepalive_connection(self, server):
        """The connection-churn fix: one TCP connection per thread, not
        one per request (the dominant slice of broker overhead)."""
        client = BrokerClient(server.url)
        client.stats()
        first = client._connection()
        client.stats()
        client.submit(envelopes("k-00000"))
        assert client._connection() is first
        client.close()
        assert getattr(client._local, "connection", None) is None

    def test_client_recovers_from_a_dropped_connection(self, server):
        """A keep-alive socket the server closed surfaces on the *next*
        request; the client retries once on a fresh connection."""
        client = BrokerClient(server.url)
        client.stats()
        client._connection().sock.close()  # simulate server-side idle drop
        assert client.stats()["pending"] == 0  # healed transparently

    def test_unreachable_broker_raises(self):
        client = BrokerClient("http://127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(BrokerUnavailable, match="unreachable"):
            client.stats()

    def test_worker_drains_over_http(self, server):
        """The broker-mode worker loop end to end, in this process."""
        client = BrokerClient(server.url)
        payload = FAST_SPEC.to_dict()
        client.submit(
            [task_envelope("h-00000", payload), task_envelope("h-00001", payload)]
        )
        executed = drain(
            BrokerQueueClient(server.url, match="h-"), exit_when_empty=True
        )
        assert executed == 2
        response = client.collect(["h-00000", "h-00001"])
        assert len(response["results"]) == 2
        assert all(env.get("error") is None for env in response["results"])


class TestBrokerBackendIntegration:
    @pytest.mark.slow
    def test_private_broker_sweep_matches_serial(self):
        specs = [FAST_SPEC, FAST_SPEC.with_seed(2)]
        reference = BatchRunner(specs, backend=SerialBackend(), cache=False).run()
        batch = BatchRunner(
            specs, backend=BrokerBackend(workers=2, timeout_s=120.0), cache=False
        ).run()
        assert json.dumps(batch.to_dicts(include_runtime=False)) == json.dumps(
            reference.to_dicts(include_runtime=False)
        )
        assert batch.backend == "broker"
        assert batch.queue is not None and batch.queue.spawned >= 1

    @pytest.mark.slow
    def test_external_broker_url_with_external_workers(self):
        """workers=0 against an explicit URL: the fleet is somebody
        else's — here, one drain() call standing in for a remote host."""
        import threading

        server = start_broker()
        try:
            # A long-lived "remote" worker polling the broker.
            fleet = threading.Thread(
                target=drain,
                args=(BrokerQueueClient(server.url),),
                kwargs={"idle_timeout_s": 30.0, "poll_interval_s": 0.05},
                daemon=True,
            )
            fleet.start()
            backend = BrokerBackend(server.url, workers=0, timeout_s=60.0)
            batch = BatchRunner([FAST_SPEC], backend=backend, cache=False).run()
            reference = BatchRunner(
                [FAST_SPEC], backend=SerialBackend(), cache=False
            ).run()
            assert json.dumps(
                batch.to_dicts(include_runtime=False)
            ) == json.dumps(reference.to_dicts(include_runtime=False))
            assert backend.last_run_stats.spawned == 0  # nothing local
        finally:
            server.shutdown()
            server.server_close()

    def test_worker_failure_surfaces_with_task_id(self):
        backend = BrokerBackend(workers=1, timeout_s=60.0)
        with pytest.raises(BackendError, match="SpecError"):
            backend.run([{"cycles": -1}])
