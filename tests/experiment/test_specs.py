"""Spec layer: validation, round-tripping and materialization."""

from __future__ import annotations

import pytest

from repro.experiment import (
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    RadioSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
)
from repro.phy.radio import RATE_11MBPS


class TestValidation:
    def test_bad_topology_kind_rejected(self):
        with pytest.raises(SpecError):
            TopologySpec(kind="torus")

    def test_chain_needs_two_nodes(self):
        with pytest.raises(SpecError):
            TopologySpec(kind="chain", num_nodes=1)

    def test_positions_need_unique_ids(self):
        with pytest.raises(SpecError):
            TopologySpec(kind="positions", positions=((0, 0.0, 0.0), (0, 1.0, 1.0)))

    def test_unsupported_phy_rate_rejected(self):
        with pytest.raises(SpecError):
            RadioSpec(data_rate_mbps=54.0)

    def test_flow_path_too_short(self):
        with pytest.raises(SpecError):
            FlowSpec("udp", (3,))

    def test_flow_path_with_loop_rejected(self):
        with pytest.raises(SpecError):
            FlowSpec("udp", (0, 1, 0))

    def test_bad_transport_rejected(self):
        with pytest.raises(SpecError):
            FlowSpec("sctp", (0, 1))

    def test_negative_warmup_rejected(self):
        with pytest.raises(SpecError):
            ProbingSpec(warmup_s=-1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(SpecError):
            ControllerSpec(alpha=-0.5)

    def test_bad_rate_mode_rejected(self):
        with pytest.raises(SpecError):
            ScenarioSpec(rate_mode="5.5")

    def test_settle_must_fit_in_measure_window(self):
        with pytest.raises(SpecError):
            ExperimentSpec(cycle_measure_s=5.0, settle_s=5.0)

    def test_zero_cycles_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec(cycles=0)


class TestRoundTrip:
    def _full_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            scenario=ScenarioSpec(
                scenario="testbed",
                seed=3,
                run_seed=17,
                data_rate_mbps=1,
                shadowing_sigma_db=4.0,
                topology=TopologySpec(kind="grid", rows=2, cols=3, spacing_m=45.0),
                radio=RadioSpec(tx_power_dbm=15.0, cs_threshold_dbm=-85.0),
                flows=(
                    FlowSpec("udp", (0, 1, 2), rate_bps=250e3),
                    FlowSpec("tcp", (4, 3), mss_bytes=512),
                ),
                transport="tcp",
            ),
            probing=ProbingSpec(period_s=0.25, warmup_s=30.0),
            controller=ControllerSpec(alpha=2.0, probing_window=64),
            cycles=2,
            cycle_measure_s=8.0,
            settle_s=1.0,
            label="round-trip",
        )

    def test_experiment_spec_round_trips(self):
        spec = self._full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_stable(self):
        import json

        payload = self._full_spec().to_dict()
        assert json.loads(json.dumps(payload)) == payload  # no tuples survive
        assert ExperimentSpec.from_dict(json.loads(json.dumps(payload))) == self._full_spec()

    def test_sub_specs_round_trip(self):
        for spec in (
            TopologySpec(kind="positions", positions=((0, 0.0, 0.0), (1, 50.0, 0.0))),
            RadioSpec(basic_rate_mbps=2),
            FlowSpec("tcp", (5, 6, 7)),
            ProbingSpec(data_probe_bytes=1000),
            ControllerSpec(enabled=False),
            ScenarioSpec(scenario="starvation", seed=9, data_rate_mbps=1),
        ):
            assert type(spec).from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError):
            ProbingSpec.from_dict({"period_s": 0.5, "warmupp": 3})


class TestMaterialization:
    def test_topology_builds_expected_shapes(self):
        assert len(TopologySpec(kind="chain", num_nodes=5).build()) == 5
        assert len(TopologySpec(kind="grid", rows=2, cols=3).build()) == 6
        assert len(TopologySpec(kind="testbed").build(seed=1)) == 18
        explicit = TopologySpec(
            kind="positions", positions=((0, 0.0, 0.0), (4, 10.0, 5.0))
        ).build()
        assert explicit == {0: (0.0, 0.0), 4: (10.0, 5.0)}

    def test_radio_spec_builds_radio_config(self):
        config = RadioSpec(cs_threshold_dbm=-80.0, data_rate_mbps=11).build()
        assert config.cs_threshold_dbm == -80.0
        assert config.data_rate is RATE_11MBPS

    def test_controller_spec_utility(self):
        assert ControllerSpec(alpha=1.0).utility.is_proportional_fair
        assert ControllerSpec(alpha=0.0).utility.is_throughput_maximising

    def test_with_seed_re_seeds_scenario(self):
        spec = ExperimentSpec(scenario=ScenarioSpec(scenario="chain", seed=1))
        reseeded = spec.with_seed(9, run_seed=42)
        assert reseeded.scenario.seed == 9
        assert reseeded.scenario.run_seed == 42
        assert spec.scenario.seed == 1  # original untouched
