"""Scenario registry: discovery, building, custom registration."""

from __future__ import annotations

import pytest

from repro.experiment import (
    FlowSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    build_scenario,
    register_scenario,
    scenario_description,
    scenario_names,
)
from repro.experiment.registry import BuiltScenario
from repro.sim.network import TcpFlowHandle, UdpFlowHandle

BUILTIN_SCENARIOS = ["chain", "generated", "random_multiflow", "starvation", "testbed"]


class TestDiscovery:
    def test_all_builtins_registered(self):
        assert set(BUILTIN_SCENARIOS) <= set(scenario_names())

    def test_every_builtin_has_a_description(self):
        for name in BUILTIN_SCENARIOS:
            assert scenario_description(name)

    def test_unknown_scenario_raises_spec_error(self):
        with pytest.raises(SpecError, match="unknown scenario"):
            build_scenario(ScenarioSpec(scenario="no-such-scenario"))

    def test_unknown_scenario_error_lists_registered_names(self):
        """A bare lookup failure is useless at a REPL; the error must
        name every registered scenario (SpecError is a ValueError, so
        generic `except ValueError` handling keeps working)."""
        with pytest.raises(ValueError) as excinfo:
            build_scenario(ScenarioSpec(scenario="no-such-scenario"))
        message = str(excinfo.value)
        for name in scenario_names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("chain")(lambda spec: None)


class TestBuiltinBuilders:
    def test_chain_default_flow_spans_the_chain(self):
        built = build_scenario(
            ScenarioSpec(scenario="chain", topology=TopologySpec(kind="chain", num_nodes=4))
        )
        assert len(built.network.nodes) == 4
        assert len(built.flows) == 1
        assert built.flows[0].path == [0, 1, 2, 3]

    def test_chain_explicit_flows(self):
        built = build_scenario(
            ScenarioSpec(
                scenario="chain",
                flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("tcp", (1, 2))),
            )
        )
        assert isinstance(built.flows[0], UdpFlowHandle)
        assert isinstance(built.flows[1], TcpFlowHandle)
        assert built.links == [(0, 1), (1, 2)]

    def test_testbed_requires_explicit_flows(self):
        with pytest.raises(SpecError, match="explicit FlowSpecs"):
            build_scenario(ScenarioSpec(scenario="testbed"))

    def test_testbed_builds_18_nodes(self):
        built = build_scenario(
            ScenarioSpec(scenario="testbed", flows=(FlowSpec("udp", (0, 1)),))
        )
        assert len(built.network.nodes) == 18

    def test_random_multiflow_builds_requested_flows(self):
        built = build_scenario(
            ScenarioSpec(scenario="random_multiflow", seed=7, num_flows=3, rate_mode="11")
        )
        assert len(built.flows) == 3
        assert "scenario_label" in built.meta

    def test_starvation_flow_geometry(self):
        built = build_scenario(ScenarioSpec(scenario="starvation", data_rate_mbps=1))
        assert [flow.path for flow in built.flows] == [[0, 1, 2], [1, 2]]
        assert built.meta["two_hop"] == built.flows[0].flow_id

    def test_starvation_honors_run_seed(self):
        spec = ScenarioSpec(scenario="starvation", seed=0, run_seed=77, data_rate_mbps=1)
        built = build_scenario(spec)
        assert built.network.sim.seed == 77
        # Topology stays pinned to the fixed gateway chain regardless.
        base = build_scenario(ScenarioSpec(scenario="starvation", data_rate_mbps=1))
        assert built.network.positions == base.network.positions

    def test_meta_is_json_serializable(self):
        import json

        for spec in (
            ScenarioSpec(scenario="random_multiflow", seed=7, num_flows=2),
            ScenarioSpec(scenario="starvation", data_rate_mbps=1),
        ):
            json.dumps(build_scenario(spec).meta)

    def test_same_spec_builds_identical_networks(self):
        spec = ScenarioSpec(scenario="random_multiflow", seed=11, num_flows=2)
        a, b = build_scenario(spec), build_scenario(spec)
        assert [f.path for f in a.flows] == [f.path for f in b.flows]
        assert a.network.positions == b.network.positions


class TestCustomRegistration:
    def test_registered_builder_is_discoverable_and_buildable(self):
        name = "test-only-two-node"

        @register_scenario(name, description="two nodes, one UDP flow")
        def _build(spec: ScenarioSpec) -> BuiltScenario:
            from repro.sim.network import MeshNetwork
            from repro.sim.topology import no_shadowing_propagation

            network = MeshNetwork(
                {0: (0.0, 0.0), 1: (50.0, 0.0)},
                seed=spec.seed,
                propagation=no_shadowing_propagation(),
            )
            return BuiltScenario(
                name=name,
                spec=spec,
                network=network,
                flows=[network.add_udp_flow([0, 1])],
            )

        try:
            assert name in scenario_names()
            built = build_scenario(ScenarioSpec(scenario=name, seed=2))
            assert built.flows[0].path == [0, 1]
        finally:
            from repro.experiment import registry

            registry._SCENARIOS.pop(name, None)
