"""Helpers shared by the backend/broker/recovery suites.

One cheap reference cell and one canonical byte-comparison, defined
once: the cross-backend and chaos suites all assert *byte* identity, so
what they compare (and the spec they compare on) must never silently
diverge between files.
"""

from __future__ import annotations

import json

from repro.experiment import ControllerSpec, ExperimentSpec, FlowSpec, ScenarioSpec

#: Cheap noRC chain cell: no probing warmup, one second of traffic —
#: fast enough that protocol overhead, not physics, dominates a test.
FAST_SPEC = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="chain", seed=1, flows=(FlowSpec("udp", (0, 1, 2)),)
    ),
    controller=ControllerSpec(enabled=False),
    cycles=1,
    cycle_measure_s=1.0,
    settle_s=0.2,
    label="cheap-chain",
)


def canonical(payloads: list[dict]) -> str:
    """Byte-comparable form of a result payload list."""
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def canonical_batch(batch) -> str:
    """Byte-comparable form of a BatchResult, runtime block excluded."""
    return canonical(batch.to_dicts(include_runtime=False))


def strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


__all__ = ["FAST_SPEC", "canonical", "canonical_batch", "strip_runtime"]
