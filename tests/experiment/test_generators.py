"""The composable generator layer: topology x workload x radio profiles
driven end-to-end through the spec layer.

Covers the acceptance bar of the generator refactor: every topology /
workload generator is runnable purely via :class:`ScenarioSpec` (no
bespoke builder code), generated specs round-trip and digest stably,
seeded workloads are deterministic, and generator-built sweeps return
byte-identical payloads on whichever execution backend the environment
selects (the CI backend matrix drives this file under
``REPRO_BATCH_BACKEND=serial|process|work_queue``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiment import (
    BatchRunner,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
    build_scenario,
    spec_digest,
)
from repro.sim.generators import (
    build_topology,
    generate_workload,
    radio_profile_config,
    radio_profile_names,
    radio_profile_params,
    topology_names,
    topology_node_count,
    workload_names,
    workload_rng,
)

# ---------------------------------------------------------------------------
# The declarative grid this file exercises: five-plus topology generators
# and three-plus workload generators, all pure ScenarioSpec.
# ---------------------------------------------------------------------------
TOPOLOGIES = {
    "chain": TopologySpec(kind="chain", num_nodes=4, spacing_m=55.0),
    "grid": TopologySpec(kind="grid", rows=2, cols=3, spacing_m=55.0),
    "ring": TopologySpec(kind="ring", num_nodes=6, radius_m=90.0),
    "random_disk": TopologySpec(kind="random_disk", num_nodes=8, radius_m=140.0),
    "binary_tree": TopologySpec(kind="binary_tree", depth=3, spacing_m=50.0),
    "parking_lot": TopologySpec(kind="parking_lot", num_nodes=3, spacing_m=55.0),
}
EXPECTED_NODES = {
    "chain": 4,
    "grid": 6,
    "ring": 6,
    "random_disk": 8,
    "binary_tree": 7,
    "parking_lot": 5,
}
WORKLOADS = {
    "saturated_udp": WorkloadSpec(generator="saturated_udp", num_flows=3, max_hops=3),
    "tcp_bulk": WorkloadSpec(generator="tcp_bulk", num_flows=2, max_hops=2),
    "mixed_tcp_udp": WorkloadSpec(
        generator="mixed_tcp_udp", num_flows=3, max_hops=3, tcp_fraction=0.5
    ),
    "gravity": WorkloadSpec(generator="gravity", num_flows=3, rate_bps=150e3),
}


def generated_scenario(
    topology: str = "grid", workload: str = "saturated_udp", seed: int = 3
) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="generated",
        seed=seed,
        topology=TOPOLOGIES[topology],
        workload=WORKLOADS[workload],
        rate_mode="11",
    )


class TestTopologyGenerators:
    def test_registry_covers_the_advertised_generators(self):
        assert set(EXPECTED_NODES) <= set(topology_names())

    @pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
    def test_build_produces_expected_node_count(self, kind):
        positions = TOPOLOGIES[kind].build(seed=1)
        assert len(positions) == EXPECTED_NODES[kind]
        assert TOPOLOGIES[kind].node_count() == EXPECTED_NODES[kind]
        assert topology_node_count(kind, TOPOLOGIES[kind].to_dict()) == (
            EXPECTED_NODES[kind]
        )

    @pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
    def test_build_is_deterministic_in_seed(self, kind):
        spec = TOPOLOGIES[kind]
        assert spec.build(seed=7) == spec.build(seed=7)

    def test_random_disk_varies_with_seed_and_respects_separation(self):
        spec = TOPOLOGIES["random_disk"]
        a, b = spec.build(seed=1), spec.build(seed=2)
        assert a != b
        points = list(a.values())
        for i, (x1, y1) in enumerate(points):
            for x2, y2 in points[i + 1 :]:
                assert (x1 - x2) ** 2 + (y1 - y2) ** 2 >= spec.min_separation_m**2

    def test_line_is_an_alias_of_chain(self):
        line = TopologySpec(kind="line", num_nodes=4, spacing_m=55.0)
        assert line.build() == TOPOLOGIES["chain"].build()

    def test_unknown_generator_lists_registered_names(self):
        with pytest.raises(KeyError, match="registered:.*grid"):
            build_topology("moebius_strip", {})
        with pytest.raises(SpecError, match="registered generator"):
            TopologySpec(kind="moebius_strip")


class TestWorkloadGenerators:
    @pytest.fixture(scope="class")
    def network(self):
        return build_scenario(generated_scenario("grid", "saturated_udp")).network

    def test_registry_covers_the_advertised_generators(self):
        assert {"saturated_udp", "tcp_bulk", "mixed_tcp_udp", "gravity"} <= set(
            workload_names()
        )

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_spec_produces_identical_flows(self, name, network):
        workload = WORKLOADS[name]
        first = generate_workload(network, name, seed=5, **workload.params())
        second = generate_workload(network, name, seed=5, **workload.params())
        assert first == second

    def test_different_seeds_draw_from_different_streams(self, network):
        workload = WORKLOADS["saturated_udp"]
        seeds = {
            tuple(f.path for f in generate_workload(
                network, "saturated_udp", seed=seed, **workload.params()
            ))
            for seed in range(8)
        }
        assert len(seeds) > 1  # at least some seeds pick different demands

    def test_generator_streams_are_independent(self):
        a = workload_rng("saturated_udp", 3).uniform(size=4).tolist()
        b = workload_rng("gravity", 3).uniform(size=4).tolist()
        assert a != b

    def test_paths_respect_max_hops(self, network):
        flows = generate_workload(network, "saturated_udp", seed=2, num_flows=4, max_hops=2)
        assert all(1 <= len(f.path) - 1 <= 2 for f in flows)

    def test_gravity_splits_the_rate_budget(self, network):
        flows = generate_workload(
            network, "gravity", seed=2, num_flows=3, rate_bps=100e3
        )
        total = sum(f.rate_bps for f in flows)
        assert total == pytest.approx(100e3 * 3)
        assert len({f.rate_bps for f in flows}) > 1  # weighted, not uniform

    def test_unknown_generator_lists_registered_names(self, network):
        with pytest.raises(KeyError, match="registered:.*gravity"):
            generate_workload(network, "broadcast_storm", seed=0)
        with pytest.raises(SpecError, match="registered name"):
            WorkloadSpec(generator="broadcast_storm")


class TestRadioProfiles:
    def test_hidden_terminal_profile_matches_the_legacy_radio(self):
        from repro.sim.scenarios import hidden_terminal_radio

        assert radio_profile_config("hidden_terminal", 1) == hidden_terminal_radio(1)

    def test_every_profile_builds(self):
        for name in radio_profile_names():
            config = radio_profile_config(name, data_rate_mbps=11)
            assert config.data_rate.bps == 11e6

    def test_unknown_profile_lists_registered_names(self):
        with pytest.raises(KeyError, match="registered:.*hidden_terminal"):
            radio_profile_params("quantum_entangled")
        with pytest.raises(SpecError, match="radio_profile must be one of"):
            ScenarioSpec(scenario="generated", radio_profile="quantum_entangled")


class TestSpecRoundTripAndDigest:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_generated_specs_round_trip(self, topology, workload):
        spec = ExperimentSpec(
            scenario=generated_scenario(topology, workload), label="rt"
        )
        payload = spec.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert ExperimentSpec.from_dict(json.loads(json.dumps(payload))) == spec

    def test_digest_is_stable_across_equal_constructions(self):
        a = ExperimentSpec(scenario=generated_scenario("grid", "gravity"))
        b = ExperimentSpec(scenario=generated_scenario("grid", "gravity"))
        assert a is not b and spec_digest(a) == spec_digest(b)
        assert spec_digest(a) == spec_digest(a.to_dict())

    def test_digest_distinguishes_generator_parameters(self):
        base = ExperimentSpec(scenario=generated_scenario("grid", "saturated_udp"))
        other_topo = ExperimentSpec(scenario=generated_scenario("ring", "saturated_udp"))
        other_load = ExperimentSpec(scenario=generated_scenario("grid", "tcp_bulk"))
        assert len({spec_digest(base), spec_digest(other_topo), spec_digest(other_load)}) == 3

    def test_radio_and_profile_are_mutually_exclusive(self):
        from repro.experiment import RadioSpec

        with pytest.raises(SpecError, match="not both"):
            ScenarioSpec(
                scenario="generated",
                radio=RadioSpec(),
                radio_profile="hidden_terminal",
            )

    def test_flows_and_workload_are_mutually_exclusive(self):
        with pytest.raises(SpecError, match="not both"):
            ScenarioSpec(
                scenario="generated",
                flows=(FlowSpec("udp", (0, 1)),),
                workload=WorkloadSpec(),
            )


class TestGeneratedBuilder:
    def test_needs_a_topology(self):
        with pytest.raises(SpecError, match="topology"):
            build_scenario(ScenarioSpec(scenario="generated", workload=WorkloadSpec()))

    def test_needs_flows_or_workload(self):
        with pytest.raises(SpecError, match="flows or a"):
            build_scenario(
                ScenarioSpec(scenario="generated", topology=TOPOLOGIES["grid"])
            )

    def test_meta_records_the_composition(self):
        built = build_scenario(generated_scenario("parking_lot", "gravity"))
        assert built.meta["topology_generator"] == "parking_lot"
        assert built.meta["workload_generator"] == "gravity"
        assert built.meta["node_count"] == EXPECTED_NODES["parking_lot"]
        assert built.meta["routes"] == [list(f.path) for f in built.flows]
        json.dumps(built.meta)  # results must serialize losslessly

    def test_explicit_flows_still_work(self):
        spec = ScenarioSpec(
            scenario="generated",
            topology=TOPOLOGIES["chain"],
            flows=(FlowSpec("udp", (0, 1, 2)),),
            rate_mode="11",
        )
        built = build_scenario(spec)
        assert [f.path for f in built.flows] == [[0, 1, 2]]

    def test_same_spec_builds_identical_scenarios(self):
        spec = generated_scenario("binary_tree", "mixed_tcp_udp", seed=9)
        a, b = build_scenario(spec), build_scenario(spec)
        assert a.network.positions == b.network.positions
        assert [f.path for f in a.flows] == [f.path for f in b.flows]
        assert [type(f).__name__ for f in a.flows] == [type(f).__name__ for f in b.flows]


# ---------------------------------------------------------------------------
# Cross-backend byte identity for generator-built sweeps.  Deliberately
# does NOT pin a backend: under the CI backend matrix
# (REPRO_BATCH_BACKEND exported) the same sweep genuinely dispatches
# through serial, process-pool and work-queue execution and must match
# the serial reference bit for bit.
# ---------------------------------------------------------------------------
def _fast_generated_spec(seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="generated",
            seed=seed,
            topology=TopologySpec(kind="parking_lot", num_nodes=2, spacing_m=55.0),
            workload=WorkloadSpec(generator="saturated_udp", num_flows=2, max_hops=2),
            rate_mode="11",
        ),
        controller=ControllerSpec(enabled=False),
        probing=ProbingSpec(warmup_s=1.0),
        cycles=1,
        cycle_measure_s=1.0,
        settle_s=0.2,
        label="generated-backend-smoke",
    )


def _canonical(payloads: list[dict]) -> str:
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


class TestCrossBackendByteIdentity:
    def test_generated_sweep_matches_serial_reference_on_ambient_backend(self):
        sweep = [_fast_generated_spec(seed) for seed in range(2)]
        ambient = BatchRunner(sweep, cache=False).run()
        reference = BatchRunner(sweep, backend="serial", cache=False).run()
        expected = os.environ.get("REPRO_BATCH_BACKEND") or "process"
        assert ambient.backend == expected
        assert ambient.planner.executed == 2
        assert _canonical(ambient.to_dicts(include_runtime=False)) == _canonical(
            reference.to_dicts(include_runtime=False)
        )


class TestEdgeCases:
    def test_gravity_survives_underflowing_weights(self):
        """demand_exponent extreme enough to underflow every gravity
        weight to 0 must fall back to an even budget split, not NaN."""
        import math

        network = build_scenario(generated_scenario("grid", "saturated_udp")).network
        flows = generate_workload(
            network, "gravity", seed=2, num_flows=3, rate_bps=90e3,
            demand_exponent=400.0,
        )
        assert all(math.isfinite(f.rate_bps) for f in flows)
        assert sum(f.rate_bps for f in flows) == pytest.approx(90e3 * 3)
