"""Content-addressed result cache: keys, storage, eviction, wiring."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiment import (
    SPEC_SCHEMA_VERSION,
    BatchRunner,
    ControllerSpec,
    CycleResult,
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
    default_cache,
    resolve_cache,
    seed_sweep,
    spec_digest,
)

SPEC = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="chain",
        seed=1,
        flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
    ),
    probing=ProbingSpec(warmup_s=10.0),
    controller=ControllerSpec(alpha=1.0, probing_window=40),
    cycles=1,
    cycle_measure_s=4.0,
    settle_s=1.0,
    label="cache-smoke",
)


def synthetic_result(spec: ExperimentSpec = SPEC) -> ExperimentResult:
    """A hand-built result, so storage tests need no simulation."""
    return ExperimentResult(
        spec=spec,
        flow_ids=[0, 1],
        flow_paths={0: (0, 1, 2), 1: (1, 2)},
        cycles=[
            CycleResult(
                index=0,
                sim_start=12.0,
                sim_end=14.0,
                target_bps={0: 250_000.0, 1: 500_000.0},
                achieved_bps={0: 240_000.0, 1: 480_000.0},
                utility=25.5,
            )
        ],
        sim_time_s=14.0,
        wall_time_s=0.25,
        events_processed=1234,
        meta={"note": "synthetic"},
    )


class TestSpecDigest:
    def test_digest_is_stable_hex(self):
        digest = spec_digest(SPEC)
        assert len(digest) == 64 and int(digest, 16) >= 0
        assert spec_digest(SPEC) == digest

    def test_dict_and_spec_agree(self):
        assert spec_digest(SPEC.to_dict()) == spec_digest(SPEC)

    def test_key_order_irrelevant(self):
        payload = SPEC.to_dict()
        reordered = json.loads(json.dumps(payload, sort_keys=True))
        shuffled = dict(reversed(list(reordered.items())))
        assert spec_digest(shuffled) == spec_digest(payload)

    def test_distinct_specs_distinct_digests(self):
        assert spec_digest(SPEC) != spec_digest(SPEC.with_seed(2))

    def test_schema_version_changes_key(self):
        assert spec_digest(SPEC) != spec_digest(
            SPEC, schema_version=SPEC_SCHEMA_VERSION + 1
        )

    def test_digest_stable_across_processes(self):
        """The cache key must not depend on per-process hash randomization."""
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "import json\n"
            "from repro.experiment import ExperimentSpec, spec_digest\n"
            "spec = ExperimentSpec.from_dict(json.loads(sys.argv[2]))\n"
            "print(spec_digest(spec))\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        digests = {
            subprocess.run(
                [sys.executable, "-c", script, src, json.dumps(SPEC.to_dict())],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert digests == {spec_digest(SPEC)}


class TestResultRoundTrip:
    def test_round_trip_is_lossless(self):
        result = synthetic_result()
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.spec == result.spec
        assert clone.flow_paths == result.flow_paths
        assert clone.cycles[0].achieved_bps == result.cycles[0].achieved_bps
        assert clone.meta == result.meta

    def test_round_trip_survives_json(self):
        result = synthetic_result()
        over_the_wire = json.loads(json.dumps(result.to_dict()))
        assert ExperimentResult.from_dict(over_the_wire).to_dict() == result.to_dict()

    def test_runtime_block_optional(self):
        data = synthetic_result().to_dict(include_runtime=False)
        assert "runtime" not in data
        clone = ExperimentResult.from_dict(data)
        assert clone.wall_time_s == 0.0 and clone.events_processed == 0


class TestResultCacheStorage:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(SPEC) is None
        cache.put(synthetic_result())
        fetched = cache.get(SPEC)
        assert fetched is not None
        assert fetched.to_dict() == synthetic_result().to_dict()
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.puts == 1 and cache.stats.hit_rate == 0.5

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert SPEC not in cache and len(cache) == 0
        cache.put(synthetic_result())
        assert SPEC in cache and SPEC.to_dict() in cache and len(cache) == 1
        assert SPEC.with_seed(9) not in cache

    def test_payloads_survive_a_new_handle(self, tmp_path):
        ResultCache(tmp_path).put(synthetic_result())
        reopened = ResultCache(tmp_path)
        assert reopened.get(SPEC).to_dict() == synthetic_result().to_dict()

    @pytest.mark.parametrize(
        "garbage",
        [
            "{not json",
            "[]",
            '"a string"',
            '{"entries": [1, 2]}',
            '{"entries": {"ab12": 5}}',
            '{"entries": {"ab12": {"seq": "x"}}}',
        ],
        ids=[
            "invalid-json",
            "json-list",
            "json-string",
            "non-dict-entries",
            "non-dict-entry-value",
            "non-numeric-seq",
        ],
    )
    def test_index_rebuilds_after_corruption(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        cache.put(synthetic_result())
        (tmp_path / "index.json").write_text(garbage, encoding="utf-8")
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(SPEC) is not None

    def test_warm_lookups_do_not_rewrite_the_index(self, tmp_path):
        """A warm sweep must cost JSON reads only: LRU touches are kept
        in memory and persisted with the next put/eviction."""
        cache = ResultCache(tmp_path)
        cache.put(synthetic_result())
        index_file = tmp_path / "index.json"
        before = index_file.stat().st_mtime_ns
        for _ in range(3):
            assert cache.get(SPEC) is not None
        assert index_file.stat().st_mtime_ns == before

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = cache.put(synthetic_result())
        payload_file = tmp_path / digest[:2] / f"{digest}.json"
        payload_file.write_text("garbage", encoding="utf-8")
        assert cache.get(SPEC) is None
        assert SPEC not in cache  # stale entry dropped

    def test_eviction_by_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        specs = [SPEC.with_seed(seed) for seed in (1, 2, 3)]
        for spec in specs:
            cache.put(synthetic_result(spec))
        assert len(cache) == 2 and cache.stats.evictions == 1
        assert specs[0] not in cache  # oldest entry went first
        assert specs[1] in cache and specs[2] in cache

    def test_eviction_is_lru_not_fifo(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        old, young = SPEC.with_seed(1), SPEC.with_seed(2)
        cache.put(synthetic_result(old))
        cache.put(synthetic_result(young))
        assert cache.get(old) is not None  # refresh the older entry
        cache.put(synthetic_result(SPEC.with_seed(3)))
        assert old in cache and young not in cache

    def test_eviction_by_size(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        cache.put(synthetic_result(SPEC.with_seed(1)))
        cache.put(synthetic_result(SPEC.with_seed(2)))
        # Every put overflows a 1-byte cache: only the newest entry stays.
        assert len(cache) == 1 and cache.stats.evictions >= 1

    def test_stale_handle_write_preserves_other_writers_entries(self, tmp_path):
        """An index write from a handle with an old snapshot must re-adopt
        entries another handle added meanwhile, not orphan their payloads."""
        stale = ResultCache(tmp_path)
        assert len(stale) == 0  # pin the stale snapshot
        other = ResultCache(tmp_path)
        other.put(synthetic_result(SPEC.with_seed(1)))
        stale.put(synthetic_result(SPEC.with_seed(2)))
        fresh = ResultCache(tmp_path)
        assert SPEC.with_seed(1) in fresh and SPEC.with_seed(2) in fresh
        assert fresh.get(SPEC.with_seed(1)) is not None

    def test_index_merge_respects_bounds(self, tmp_path):
        """Entries adopted from another writer during the index merge
        count against this handle's bounds — the directory must not
        exceed max_entries just because two handles wrote concurrently."""
        stale = ResultCache(tmp_path, max_entries=2)
        assert len(stale) == 0  # pin the stale snapshot
        other = ResultCache(tmp_path, max_entries=2)
        for seed in (1, 2):
            other.put(synthetic_result(SPEC.with_seed(seed)))
        for seed in (3, 4):
            stale.put(synthetic_result(SPEC.with_seed(seed)))
        assert len(ResultCache(tmp_path, max_entries=2)) <= 2

    def test_deferred_puts_flush_once(self, tmp_path):
        """Bulk writers (the batch runner's cold-sweep writeback) defer
        the index write per put and persist it with one flush."""
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            cache.put_payload(
                SPEC.with_seed(seed),
                synthetic_result(SPEC.with_seed(seed)).to_dict(),
                flush=False,
            )
        assert not (tmp_path / "index.json").exists()  # nothing flushed yet
        # Unflushed puts are still visible through this handle...
        assert SPEC.with_seed(1) in cache
        cache.flush()
        # ...and through a fresh handle once flushed.
        reopened = ResultCache(tmp_path)
        assert all(SPEC.with_seed(s) in reopened for s in (1, 2, 3))

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(synthetic_result())
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.get(SPEC) is None

    def test_bad_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)


class TestDefaultCacheResolution:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache().cache_dir == tmp_path / "env-cache"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache().cache_dir == tmp_path / "repro-mesh"

    def test_resolve_none_without_env_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None

    def test_resolve_none_with_env_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = resolve_cache(None)
        assert isinstance(cache, ResultCache) and cache.cache_dir == tmp_path

    def test_env_handle_is_shared_per_process(self, tmp_path, monkeypatch):
        """Looping run_experiment under REPRO_CACHE_DIR must reuse one
        handle (one index parse), not rebuild a cache per call."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        first = resolve_cache(None)
        assert resolve_cache(None) is first
        assert resolve_cache(True) is first  # cache=True shares the handle
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        switched = resolve_cache(None)
        assert switched is not first and switched.cache_dir == tmp_path / "b"

    def test_size_accounting_is_bytes_not_characters(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = synthetic_result()
        result.meta["author"] = "Guérin — CoNEXT"  # multi-byte UTF-8
        digest = cache.put(result)
        on_disk = (tmp_path / digest[:2] / f"{digest}.json").stat().st_size
        assert cache.size_bytes == on_disk

    def test_resolve_false_always_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache(False) is None

    def test_resolve_passthrough(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache


class TestExperimentIntegration:
    @pytest.fixture(scope="class")
    def cold(self, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("exp-cache"))
        result = Experiment(SPEC, keep_decisions=False).run(cache=cache)
        return cache, result

    def test_cold_run_writes_back(self, cold):
        cache, _ = cold
        assert SPEC in cache and cache.stats.puts == 1

    def test_warm_run_is_bit_identical(self, cold):
        cache, result = cold
        warm = Experiment(SPEC, keep_decisions=False).run(cache=cache)
        assert cache.stats.hits >= 1
        assert warm.to_dict() == result.to_dict()

    def test_prebuilt_scenario_bypasses_cache_entirely(self, tmp_path):
        """A caller-built scenario may diverge from the spec, so neither
        lookups nor writebacks may touch the content-addressed store."""
        cache = ResultCache(tmp_path)
        experiment = Experiment(SPEC, keep_decisions=False)
        experiment.run(experiment.build(), cache=cache)
        assert len(cache) == 0
        assert cache.stats.lookups == 0 and cache.stats.puts == 0

    def test_keep_decisions_skips_lookup_and_preserves_entry(self, cold):
        cache, result = cold
        hits_before, puts_before = cache.stats.hits, cache.stats.puts
        stored_before = cache.get_payload(SPEC)
        kept = Experiment(SPEC, keep_decisions=True).run(cache=cache)
        assert cache.stats.hits == hits_before + 1  # our own get_payload above
        assert cache.stats.puts == puts_before  # digest present: no overwrite
        assert kept.final_cycle.decision is not None
        assert kept.to_dict(include_runtime=False) == result.to_dict(
            include_runtime=False
        )
        # The original payload — runtime block included — survives re-runs.
        assert cache.get_payload(SPEC) == stored_before

    def test_keep_decisions_run_seeds_an_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        kept = Experiment(SPEC, keep_decisions=True).run(cache=cache)
        assert cache.stats.puts == 1 and SPEC in cache
        warm = Experiment(SPEC, keep_decisions=False).run(cache=cache)
        assert warm.to_dict() == kept.to_dict()


class TestBatchIntegration:
    @pytest.fixture(scope="class")
    def sweep(self):
        return seed_sweep(SPEC, range(3))

    @pytest.fixture(scope="class")
    def cache_and_cold(self, tmp_path_factory, sweep):
        cache = ResultCache(tmp_path_factory.mktemp("batch-cache"))
        cold = BatchRunner(sweep, parallel=False, cache=cache).run()
        return cache, cold

    def test_cold_sweep_counts_misses(self, cache_and_cold, sweep):
        cache, cold = cache_and_cold
        assert cold.cache_hits == 0 and cold.cache_misses == len(sweep)
        assert cold.cache_hit_rate == 0.0
        assert len(cache) == len(sweep)

    def test_warm_sweep_bit_identical_and_poolless(self, cache_and_cold, sweep):
        cache, cold = cache_and_cold
        warm = BatchRunner(sweep, parallel=True, max_workers=2, cache=cache).run()
        assert warm.cache_hits == len(sweep) and warm.cache_misses == 0
        assert warm.cache_hit_rate == 1.0
        assert not warm.parallel  # zero workers spawned on a fully warm sweep
        assert warm.to_dicts(include_runtime=True) == cold.to_dicts(
            include_runtime=True
        )

    def test_partially_warm_sweep_runs_only_misses(self, cache_and_cold, sweep):
        cache, cold = cache_and_cold
        extended = sweep + seed_sweep(SPEC, [7])
        mixed = BatchRunner(extended, parallel=False, cache=cache).run()
        assert mixed.cache_hits == len(sweep) and mixed.cache_misses == 1
        assert mixed.to_dicts(include_runtime=True)[: len(sweep)] == cold.to_dicts(
            include_runtime=True
        )

    def test_report_mentions_cache_hits(self, cache_and_cold, sweep):
        cache, _ = cache_and_cold
        warm = BatchRunner(sweep, parallel=False, cache=cache).run()
        assert "from cache" in warm.report("warm").render()

    def test_uncached_sweep_reports_zero(self, sweep):
        result = BatchRunner(sweep[:1], parallel=False, cache=False).run()
        assert result.cache_hits == 0 and result.cache_misses == 0
        assert "from cache" not in result.report().render()


class TestMeasuredCostLedger:
    """Per-digest wall clocks recorded on writeback (the planner's
    learned cost model) — they must outlive the payloads themselves."""

    def _payload(self, wall_s: float) -> dict:
        return {"cycles": [], "runtime": {"wall_time_s": wall_s}}

    def test_put_records_the_payloads_wall_clock(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = {"label": "cost-probe"}
        assert cache.measured_cost_s(spec) is None
        cache.put_payload(spec, self._payload(2.5))
        assert cache.measured_cost_s(spec) == 2.5
        assert cache.measured_cost_s(cache.key(spec)) == 2.5  # digest form

    def test_cost_survives_eviction_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        first, second = {"label": "a"}, {"label": "b"}
        cache.put_payload(first, self._payload(1.5))
        cache.put_payload(second, self._payload(2.5))  # evicts `first`
        assert cache.get_payload(first) is None  # payload gone...
        assert cache.measured_cost_s(first) == 1.5  # ...cost remembered
        cache.clear()
        assert cache.measured_cost_s(second) == 2.5

    def test_cost_persists_to_a_fresh_handle(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = {"label": "persisted"}
        cache.put_payload(spec, self._payload(3.25))
        assert ResultCache(tmp_path).measured_cost_s(spec) == 3.25

    def test_runtime_free_payloads_record_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = {"label": "no-runtime"}
        cache.put_payload(spec, {"cycles": []})
        assert cache.measured_cost_s(spec) is None
        assert cache.cost_ledger_size == 0

    def test_malformed_ledger_is_dropped_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = {"label": "x"}
        cache.put_payload(spec, self._payload(1.0))
        index_file = tmp_path / "index.json"
        data = json.loads(index_file.read_text(encoding="utf-8"))
        data["costs"] = {"deadbeef": "not-a-number", "cafe": -3, "feed": 2.0}
        index_file.write_text(json.dumps(data), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.measured_cost_s("feed") == 2.0
        assert fresh.measured_cost_s("deadbeef") is None
        assert fresh.measured_cost_s("cafe") is None

    def test_concurrent_writers_merge_their_ledgers(self, tmp_path):
        stale = ResultCache(tmp_path)
        stale.put_payload({"label": "mine"}, self._payload(1.0))
        other = ResultCache(tmp_path)
        other.put_payload({"label": "theirs"}, self._payload(2.0))
        # The stale handle flushes last; the other writer's cost must
        # survive the read-merge-write.
        stale.put_payload({"label": "mine-2"}, self._payload(3.0))
        fresh = ResultCache(tmp_path)
        assert fresh.measured_cost_s({"label": "theirs"}) == 2.0
        assert fresh.measured_cost_s({"label": "mine"}) == 1.0

    def test_non_finite_costs_are_rejected(self, tmp_path):
        """json round-trips bare Infinity; one inf cost would blow up
        the planner's calibration ratio, so the ledger must drop it."""
        cache = ResultCache(tmp_path)
        cache.put_payload({"label": "inf"}, self._payload(float("inf")))
        assert cache.measured_cost_s({"label": "inf"}) is None
        cache.put_payload({"label": "ok"}, self._payload(1.0))
        index_file = tmp_path / "index.json"
        text = index_file.read_text(encoding="utf-8")
        data = json.loads(text)
        data["costs"]["deadbeef"] = float("inf")  # json dumps as Infinity
        index_file.write_text(json.dumps(data), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.measured_cost_s("deadbeef") is None
        assert fresh.measured_cost_s({"label": "ok"}) == 1.0
