"""BrokerStore and the durable BrokerQueue: restart must lose nothing.

The store mechanics (journal generations, snapshot rotation, torn-tail
tolerance) are pinned directly; the queue-level tests then drive a
durable :class:`BrokerQueue` through submit/claim/result, "restart" it —
a brand-new queue on a brand-new clock pointed at the same store
directory — and assert the recovered state is exactly what died,
including lease deadlines re-anchored from persisted *remaining*
durations rather than dead absolute instants.  The full-stack version
(a real SIGKILL of a real broker subprocess mid-sweep) lives in
``test_recovery.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.experiment.backends import task_envelope
from repro.experiment.broker import BrokerQueue
from repro.experiment.broker_store import BrokerStore


def envelopes(*ids: str, lease_s: float = 5.0, max_attempts: int = 3) -> list:
    return [
        task_envelope(task_id, {"cell": task_id}, lease_s=lease_s,
                      max_attempts=max_attempts)
        for task_id in ids
    ]


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def journals(store_dir) -> list[str]:
    return sorted(p.name for p in store_dir.glob("journal-*.jsonl"))


class TestBrokerStore:
    """The journal/snapshot mechanics, without a queue on top."""

    def test_fresh_store_recovers_to_nothing(self, tmp_path):
        store = BrokerStore(tmp_path / "store")
        assert store.recover() == (None, [])
        store.close()

    def test_journal_records_replay_in_order(self, tmp_path):
        store = BrokerStore(tmp_path / "store", snapshot_every=100)
        for index in range(3):
            assert not store.append({"op": "submit", "seq": index})
        store.close()
        state, records = BrokerStore(tmp_path / "store").recover()
        assert state is None
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_append_reports_when_a_checkpoint_is_due(self, tmp_path):
        store = BrokerStore(tmp_path / "store", snapshot_every=2)
        assert not store.append({"op": "a"})
        assert store.append({"op": "b"})  # second record: checkpoint due
        store.checkpoint({"x": 1})
        assert not store.append({"op": "c"})  # counter reset
        store.close()

    def test_checkpoint_rotates_and_retires_journals(self, tmp_path):
        store = BrokerStore(tmp_path / "store", snapshot_every=100)
        store.append({"op": "a"})
        store.checkpoint({"x": 1})
        # The superseded generation is gone; the live one remains.
        assert journals(tmp_path / "store") == ["journal-00000001.jsonl"]
        store.append({"op": "b"})
        store.close()
        state, records = BrokerStore(tmp_path / "store").recover()
        assert state == {"x": 1}
        assert [r["op"] for r in records] == ["b"]  # "a" is in the snapshot

    def test_torn_final_line_is_skipped(self, tmp_path):
        """The record a SIGKILL interrupted mid-append was never
        acknowledged to anyone, so dropping it loses nothing."""
        store = BrokerStore(tmp_path / "store", snapshot_every=100)
        store.append({"op": "whole"})
        store.close()
        [journal] = (tmp_path / "store").glob("journal-*.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"op": "torn", "tasks": [{"id"')  # no newline, no close
        state, records = BrokerStore(tmp_path / "store").recover()
        assert state is None
        assert [r["op"] for r in records] == ["whole"]

    def test_unreadable_snapshot_falls_back_to_journal_replay(self, tmp_path):
        store = BrokerStore(tmp_path / "store", snapshot_every=100)
        store.append({"op": "a"})
        store.close()
        (tmp_path / "store" / "snapshot.json").write_text(
            "not json at all", encoding="utf-8"
        )
        state, records = BrokerStore(tmp_path / "store").recover()
        assert state is None
        assert [r["op"] for r in records] == ["a"]

    def test_snapshot_write_is_atomic(self, tmp_path):
        """The snapshot must land via os.replace — a crash mid-write
        leaves the previous snapshot, never a torn one."""
        store = BrokerStore(tmp_path / "store")
        store.checkpoint({"x": 1})
        raw = (tmp_path / "store" / "snapshot.json").read_text(encoding="utf-8")
        snapshot = json.loads(raw)  # whole, parseable
        assert snapshot["state"] == {"x": 1}
        assert snapshot["generation"] == 1
        assert not list((tmp_path / "store").glob(".snapshot*"))  # no temp residue
        store.close()

    def test_snapshot_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            BrokerStore(tmp_path / "store", snapshot_every=0)


def durable_queue(store_dir, clock, snapshot_every=1000, **kwargs) -> BrokerQueue:
    return BrokerQueue(
        lease_s=5.0,
        max_attempts=3,
        time_fn=clock,
        store=BrokerStore(store_dir, snapshot_every=snapshot_every),
        **kwargs,
    )


class TestDurableBrokerQueue:
    """Queue state across a simulated restart (new process clock)."""

    def test_restart_recovers_pending_claimed_and_results(self, tmp_path):
        queue = durable_queue(tmp_path / "store", FakeClock(100.0))
        queue.submit(envelopes("j-00000", "j-00001", "j-00002"))
        assert queue.claim()["id"] == "j-00000"
        assert queue.result({"id": "j-00000", "result": {"ok": 1}})
        assert queue.claim()["id"] == "j-00001"

        # Restart: brand-new queue, brand-new (much earlier!) clock.
        revived = durable_queue(tmp_path / "store", FakeClock(7.0))
        stats = revived.stats()
        assert stats["pending"] == 1  # j-00002
        assert stats["claimed"] == 1  # j-00001, lease re-anchored
        assert stats["results"] == 1  # j-00000's finished payload
        assert stats["durable"]
        response = revived.collect(match="j-")
        assert [e["id"] for e in response["results"]] == ["j-00000"]
        assert response["results"][0]["result"] == {"ok": 1}

    def test_restart_equals_never_having_died(self, tmp_path):
        """Same operations, with and without a restart in the middle,
        end in the same observable state."""
        ops_first = envelopes("e-00000", "e-00001")
        witness = BrokerQueue(lease_s=5.0, time_fn=FakeClock(100.0))
        witness.submit(ops_first)
        witness.claim()
        witness.result({"id": "e-00000", "result": {"ok": 0}})

        durable = durable_queue(tmp_path / "store", FakeClock(100.0))
        durable.submit(ops_first)
        durable.claim()
        durable.result({"id": "e-00000", "result": {"ok": 0}})
        revived = durable_queue(tmp_path / "store", FakeClock(50.0))

        for queue in (witness, revived):
            response = queue.collect(match="e-")
            assert [e["id"] for e in response["results"]] == ["e-00000"]
            assert response["pending"] == 1
        # The pending task is claimable on both sides, same id.
        assert witness.claim()["id"] == revived.claim()["id"] == "e-00001"

    def test_journal_replayed_claim_gets_a_full_fresh_lease(self, tmp_path):
        clock = FakeClock(100.0)
        queue = durable_queue(tmp_path / "store", clock)
        queue.submit(envelopes("j-00000", lease_s=5.0))
        queue.claim()

        new_clock = FakeClock(0.0)
        revived = durable_queue(tmp_path / "store", new_clock)
        new_clock.now += 4.0  # within the re-granted 5 s lease
        assert revived.claim() is None
        new_clock.now += 2.0  # past it: requeued with attempts bumped
        reclaimed = revived.claim()
        assert reclaimed is not None and reclaimed["attempts"] == 1

    def test_snapshot_persists_remaining_lease_not_an_instant(self, tmp_path):
        """A claim that reaches the snapshot carries its *remaining*
        duration: 2 s left at checkpoint is 2 s left after restart, on a
        clock with a completely different origin."""
        clock = FakeClock(100.0)
        # snapshot_every=1: every transition checkpoints immediately.
        queue = durable_queue(tmp_path / "store", clock, snapshot_every=1)
        queue.submit(envelopes("j-00000", lease_s=5.0))
        queue.claim()  # deadline 105.0 on the dying clock
        clock.now = 103.0  # 2 s of lease left...
        queue.submit(envelopes("other-00000"))  # ...snapshotted here

        new_clock = FakeClock(1000.0)
        revived = durable_queue(tmp_path / "store", new_clock)
        new_clock.now += 1.0  # 1 s in: still leased
        assert revived.claim(match="j-") is None
        new_clock.now += 1.5  # 2.5 s in: the 2 s remainder expired
        reclaimed = revived.claim(match="j-")
        assert reclaimed is not None and reclaimed["attempts"] == 1

    def test_bucket_idle_age_survives_restart(self, tmp_path):
        """TTL garbage collection must not reset on restart — an
        abandoned submission stays abandoned."""
        clock = FakeClock(100.0)
        queue = BrokerQueue(
            lease_s=5.0,
            ttl_s=100.0,
            time_fn=clock,
            store=BrokerStore(tmp_path / "store", snapshot_every=1),
        )
        queue.submit(envelopes("dead-00000"))
        clock.now += 80.0  # 80 s idle when the broker dies
        queue.submit(envelopes("live-00000"))  # forces a fresh snapshot

        new_clock = FakeClock(0.0)
        revived = BrokerQueue(
            lease_s=5.0,
            ttl_s=100.0,
            time_fn=new_clock,
            store=BrokerStore(tmp_path / "store", snapshot_every=1),
        )
        new_clock.now += 30.0  # 80 + 30 > 100: dead- crosses the horizon
        assert revived.claim(match="dead-") is None  # GC'd, not offered
        assert revived.claim(match="live-") is not None  # 30 < 100: kept

    def test_cancel_and_ack_survive_restart(self, tmp_path):
        """Negative durability: state removed before the crash must not
        resurrect after it."""
        queue = durable_queue(tmp_path / "store", FakeClock(100.0))
        queue.submit(envelopes("j-00000", "j-00001", "j-00002"))
        queue.claim()
        queue.result({"id": "j-00000", "result": {"ok": 1}})
        queue.collect(match="j-", ack=["j-00000"])  # handed over for good
        queue.cancel(["j-00002"])  # withdrawn

        revived = durable_queue(tmp_path / "store", FakeClock(0.0))
        stats = revived.stats()
        assert stats["results"] == 0  # the acked result stayed gone
        assert stats["pending"] == 1  # j-00001 only; j-00002 stayed cancelled
        assert revived.claim()["id"] == "j-00001"

    def test_recovery_spans_many_snapshots_and_journals(self, tmp_path):
        """A long-lived broker: transitions straddling several checkpoint
        rotations all land in the recovered state exactly once."""
        clock = FakeClock(100.0)
        queue = durable_queue(
            tmp_path / "store", clock, snapshot_every=3
        )
        ids = [f"j-{index:05d}" for index in range(10)]
        for task_id in ids:  # one submit record each: several rotations
            queue.submit(envelopes(task_id))
        for _ in range(4):
            claimed = queue.claim()
            queue.result({"id": claimed["id"], "result": {"ok": 1}})

        revived = durable_queue(tmp_path / "store", FakeClock(0.0))
        stats = revived.stats()
        assert stats["pending"] == 6
        assert stats["results"] == 4
        collected = revived.collect(match="j-")
        assert [e["id"] for e in collected["results"]] == ids[:4]
