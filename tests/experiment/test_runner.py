"""Experiment runner: end-to-end smoke runs and result typing."""

from __future__ import annotations

import pytest

from repro.experiment import (
    ControllerSpec,
    Experiment,
    ExperimentSpec,
    FlowSpec,
    NO_RATE_CONTROL,
    ProbingSpec,
    ScenarioSpec,
    run_experiment,
)
from repro.experiment.runner import ExperimentResult


@pytest.fixture(scope="module")
def chain_result() -> ExperimentResult:
    """One smoke run on a 3-node chain, shared by the assertions below."""
    spec = ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="chain",
            seed=1,
            flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
        ),
        probing=ProbingSpec(warmup_s=20.0),
        controller=ControllerSpec(alpha=1.0, probing_window=40),
        cycles=2,
        cycle_measure_s=5.0,
        settle_s=1.0,
        label="smoke",
    )
    return Experiment(spec).run()


class TestRun:
    def test_one_cycle_result_per_requested_cycle(self, chain_result):
        assert [c.index for c in chain_result.cycles] == [0, 1]

    def test_flows_achieve_throughput(self, chain_result):
        throughputs = chain_result.flow_throughputs_bps
        assert set(throughputs) == {0, 1}
        assert all(bps > 0 for bps in throughputs.values())

    def test_decisions_kept_and_typed(self, chain_result):
        for cycle in chain_result.cycles:
            decision = cycle.decision
            assert decision is not None
            assert set(decision.target_outputs_bps) == {0, 1}
            assert (0, 1) in decision.link_estimates

    def test_targets_recorded_per_cycle(self, chain_result):
        for cycle in chain_result.cycles:
            assert set(cycle.target_bps) == {0, 1}
            assert all(bps > 0 for bps in cycle.target_bps.values())

    def test_utility_and_aggregates(self, chain_result):
        assert chain_result.aggregate_bps == pytest.approx(
            sum(chain_result.flow_throughputs_bps.values())
        )
        assert 0.0 < chain_result.jain_index <= 1.0
        assert chain_result.utility == chain_result.final_cycle.utility

    def test_runtime_stats_populated(self, chain_result):
        assert chain_result.sim_time_s == pytest.approx(20.0 + 2 * 5.0)
        assert chain_result.wall_time_s > 0
        assert chain_result.events_processed > 0

    def test_feasibility_ratios_cover_every_flow(self, chain_result):
        ratios = chain_result.feasibility_ratios()
        assert set(ratios) == {0, 1}
        assert all(r > 0 for r in ratios.values())


class TestNoRateControl:
    def test_norc_skips_probing_and_warmup(self):
        spec = ExperimentSpec(
            scenario=ScenarioSpec(
                scenario="chain", seed=1, flows=(FlowSpec("udp", (0, 1), rate_bps=200e3),)
            ),
            controller=NO_RATE_CONTROL,
            cycles=1,
            cycle_measure_s=3.0,
            settle_s=0.5,
        )
        result = run_experiment(spec)
        assert result.sim_time_s == pytest.approx(3.0)  # no warmup ran
        assert result.final_cycle.decision is None
        assert result.final_cycle.target_bps == {}
        assert result.flow_throughputs_bps[0] > 0

    def test_norc_default_udp_flow_is_backlogged(self):
        # A FlowSpec without rate_bps is a saturating source, so a noRC
        # baseline measures raw 802.11 rather than silent zeros.
        spec = ExperimentSpec(
            scenario=ScenarioSpec(scenario="chain", seed=1, flows=(FlowSpec("udp", (0, 1)),)),
            controller=NO_RATE_CONTROL,
            cycles=1,
            cycle_measure_s=3.0,
            settle_s=0.5,
        )
        assert run_experiment(spec).flow_throughputs_bps[0] > 1e6


class TestDeterminismAndSerialization:
    def test_same_spec_same_results(self, chain_result):
        repeat = Experiment(chain_result.spec).run()
        assert repeat.to_dict(include_runtime=False) == chain_result.to_dict(
            include_runtime=False
        )

    def test_result_round_trips_without_runtime(self, chain_result):
        payload = chain_result.to_dict(include_runtime=False)
        restored = ExperimentResult.from_dict(payload)
        assert restored.to_dict(include_runtime=False) == payload
        assert restored.flow_throughputs_bps == chain_result.flow_throughputs_bps

    def test_scenario_meta_survives_serialization(self):
        spec = ExperimentSpec(
            scenario=ScenarioSpec(scenario="starvation", data_rate_mbps=1),
            probing=ProbingSpec(warmup_s=5.0),
            controller=NO_RATE_CONTROL,
            cycles=1,
            cycle_measure_s=3.0,
            settle_s=0.5,
        )
        result = run_experiment(spec)
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored.meta == result.meta
        assert set(restored.meta) == {"two_hop", "one_hop"}

    def test_prebuilt_scenario_is_the_one_run(self):
        spec = ExperimentSpec(
            scenario=ScenarioSpec(scenario="chain", seed=1, flows=(FlowSpec("udp", (0, 1)),)),
            probing=ProbingSpec(warmup_s=5.0),
            controller=ControllerSpec(probing_window=20),
            cycles=1,
            cycle_measure_s=3.0,
            settle_s=0.5,
        )
        experiment = Experiment(spec)
        scenario = experiment.build()
        result = experiment.run(scenario)
        # The inspected network advanced: it is the instance that ran.
        assert scenario.network.now == pytest.approx(result.sim_time_s)

    def test_keep_decisions_false_drops_decisions_only(self, chain_result):
        light = Experiment(chain_result.spec, keep_decisions=False).run()
        assert all(cycle.decision is None for cycle in light.cycles)
        assert light.to_dict(include_runtime=False) == chain_result.to_dict(
            include_runtime=False
        )
