"""Golden-result regression: frozen ExperimentResult JSON per scenario.

One small experiment per registered scenario is frozen byte-for-byte
under ``tests/experiment/golden/``.  A failure here means the simulation
semantics changed — see ``golden/regenerate.py`` (the single source of
truth for the spec grid and the canonical serialization) for the
documented regeneration procedure when the change is intentional.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiment.registry import scenario_names

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_golden_module():
    spec = importlib.util.spec_from_file_location(
        "golden_regenerate", _GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


golden = _load_golden_module()


def test_every_registered_scenario_has_a_golden() -> None:
    """New scenarios must add a fixture (and existing ones keep theirs)."""
    assert sorted(golden.GOLDEN_SPECS) == scenario_names()
    for name in golden.GOLDEN_SPECS:
        assert golden.golden_path(name).exists(), (
            f"missing golden fixture for {name!r}; run "
            "PYTHONPATH=src python tests/experiment/golden/regenerate.py"
        )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SPECS))
def test_golden_result_bit_identity(name: str) -> None:
    frozen = golden.golden_path(name).read_text(encoding="utf-8")
    computed = golden.compute(name)
    assert computed == frozen, (
        f"golden result for {name!r} drifted — if the simulation change is "
        "intentional, regenerate with "
        "PYTHONPATH=src python tests/experiment/golden/regenerate.py "
        "and explain the move in the commit message"
    )
    # The fixture itself stays canonical: sorted keys, two-space indent,
    # trailing newline — regeneration is the only sanctioned writer.
    assert frozen == json.dumps(json.loads(frozen), indent=2, sort_keys=True) + "\n"
