"""Golden-result regression: frozen ExperimentResult JSON per scenario.

One small experiment per registered scenario is frozen byte-for-byte
under ``tests/experiment/golden/``.  A failure here means the simulation
semantics changed — see ``golden/regenerate.py`` (the single source of
truth for the spec grid and the canonical serialization) for the
documented regeneration procedure when the change is intentional.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiment.registry import scenario_names

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_golden_module():
    spec = importlib.util.spec_from_file_location(
        "golden_regenerate", _GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


golden = _load_golden_module()


def test_every_registered_scenario_has_a_golden() -> None:
    """New scenarios must add a fixture (and existing ones keep theirs).

    Extra fixture keys beyond the registered names are allowed — that is
    how regression grids like the multi-cycle chain freeze behaviour a
    single per-scenario cell cannot.
    """
    assert set(scenario_names()) <= set(golden.GOLDEN_SPECS)
    for name in golden.GOLDEN_SPECS:
        assert golden.golden_path(name).exists(), (
            f"missing golden fixture for {name!r}; run "
            "PYTHONPATH=src python tests/experiment/golden/regenerate.py"
        )


def test_multicycle_fixture_freezes_every_cycle() -> None:
    """The cycles>1 fixture really carries per-cycle convergence data."""
    spec = golden.GOLDEN_SPECS["chain_multicycle"]
    assert spec.cycles > 1 and spec.controller.enabled
    frozen = json.loads(golden.golden_path("chain_multicycle").read_text())
    assert len(frozen["cycles"]) == spec.cycles
    for cycle in frozen["cycles"]:
        assert cycle["target_bps"], "RC fixture must freeze optimizer targets"


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SPECS))
def test_golden_result_bit_identity(name: str) -> None:
    frozen = golden.golden_path(name).read_text(encoding="utf-8")
    computed = golden.compute(name)
    assert computed == frozen, (
        f"golden result for {name!r} drifted — if the simulation change is "
        "intentional, regenerate with "
        "PYTHONPATH=src python tests/experiment/golden/regenerate.py "
        "and explain the move in the commit message"
    )
    # The fixture itself stays canonical: sorted keys, two-space indent,
    # trailing newline — regeneration is the only sanctioned writer.
    assert frozen == json.dumps(json.loads(frozen), indent=2, sort_keys=True) + "\n"
