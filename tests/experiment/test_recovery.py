"""Worker death must not lose the sweep.

The regression this package exists to prevent: a drainer SIGKILL'd
mid-task used to leave its claim in ``claimed/`` forever — the
submitter's progress clock expired and ``BackendError`` threw away every
already-completed cell.  With lease-based claims the same kill costs
about one lease interval: the expired claim is requeued with its
``attempts`` bumped, the auto-scaler replaces the dead drainer, and the
sweep completes byte-identical to ``SerialBackend`` — on the
shared-directory queue and on the HTTP broker alike.

The kills are real ``SIGKILL``s of real worker subprocesses, triggered
by the chaos hooks documented in :mod:`repro.experiment.worker`:
``REPRO_WORKER_KILL_FILE`` (exactly one death — the flag file is
consumed atomically by its victim) and ``REPRO_WORKER_KILL_MATCH``
(every claimant of a matching task dies, which is how a task that can
*never* finish exercises the retry budget's give-up path).
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time

import pytest

from repro.experiment import (
    BackendError,
    BatchRunner,
    BrokerBackend,
    BrokerClient,
    SerialBackend,
    WorkQueueBackend,
    seed_sweep,
)
from repro.experiment.backends import CLAIMED_DIR, ensure_queue_dirs, task_envelope
from repro.experiment.backends.queue_common import worker_subprocess_env
from repro.experiment.backends.work_queue import (
    RESULTS_DIR,
    TASKS_DIR,
    _atomic_write_json,
    requeue_expired_claims,
)
from repro.experiment.worker import BrokerQueueClient, drain

from _helpers import FAST_SPEC, canonical_batch, strip_runtime
from _helpers import canonical as canonical_payloads
from _helpers import canonical_batch as canonical

#: Short enough that a recovery test finishes in seconds, long enough
#: that a live worker's quarter-lease heartbeats never miss it.
TEST_LEASE_S = 1.0


def make_backend(name: str, tmp_path, **kwargs):
    if name == "work_queue":
        return WorkQueueBackend(tmp_path / "queue", **kwargs)
    return BrokerBackend(**kwargs)


@pytest.fixture(scope="module")
def sweep():
    return seed_sweep(FAST_SPEC, range(3))


@pytest.fixture(scope="module")
def reference(sweep):
    return BatchRunner(sweep, backend=SerialBackend(), cache=False).run()


class TestSigkilledWorkerRecovery:
    """The headline fix, end to end with real subprocess kills."""

    @pytest.mark.slow
    @pytest.mark.parametrize("backend_name", ["work_queue", "broker"])
    def test_sweep_survives_a_sigkilled_drainer_byte_identically(
        self, backend_name, sweep, reference, tmp_path, monkeypatch
    ):
        flag = tmp_path / "kill-one-worker"
        flag.touch()
        monkeypatch.setenv("REPRO_WORKER_KILL_FILE", str(flag))
        backend = make_backend(
            backend_name,
            tmp_path,
            workers=2,
            lease_s=TEST_LEASE_S,
            timeout_s=120.0,
        )
        start = time.monotonic()
        batch = BatchRunner(sweep, backend=backend, cache=False).run()
        wall_s = time.monotonic() - start

        # A worker really died (the flag was consumed by its victim)...
        assert not flag.exists()
        # ...and the sweep still matches the serial reference bit for bit.
        assert canonical(batch) == canonical(reference)
        stats = backend.last_run_stats
        assert stats is not None
        assert stats.requeued >= 1  # the death was healed, not avoided
        # Whether a replacement drainer was spawned or a surviving one
        # requeued and absorbed the task itself is a race — both are
        # correct recoveries — but at least the two initial drainers ran.
        assert stats.spawned >= 2
        assert batch.queue is stats  # surfaced on the result
        # Recovery costs about one lease interval, not the stall timeout.
        # Generous bound: the 3-cell sweep itself takes a few seconds —
        # what matters is that the 120 s timeout was never the mechanism.
        assert wall_s < 60.0

    @pytest.mark.slow
    @pytest.mark.parametrize("backend_name", ["work_queue", "broker"])
    def test_retry_budget_exhaustion_names_the_task_not_a_timeout(
        self, backend_name, sweep, tmp_path, monkeypatch
    ):
        """A task whose every claimant dies gives up after max_attempts
        with an error naming the task id and attempt count — never the
        blanket 'timed out' that used to discard finished cells."""
        monkeypatch.setenv("REPRO_WORKER_KILL_MATCH", "-00000")
        backend = make_backend(
            backend_name,
            tmp_path,
            workers=2,
            lease_s=TEST_LEASE_S,
            max_attempts=2,
            timeout_s=120.0,
        )
        with pytest.raises(BackendError) as excinfo:
            BatchRunner(sweep, backend=backend, cache=False).run()
        message = str(excinfo.value)
        assert "-00000" in message  # the culprit task is named
        assert "2 time(s)" in message and "max_attempts=2" in message
        assert "timed out" not in message


def _start_broker_proc(store_dir, port: int, lease_s: float = 30.0):
    """A real broker subprocess; returns ``(proc, url)`` once listening."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiment.broker",
            "--port",
            str(port),
            "--store-dir",
            str(store_dir),
            "--lease-s",
            str(lease_s),
            "--snapshot-every",
            "4",  # small: the kill window straddles snapshot rotations
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=worker_subprocess_env(),
    )
    line = proc.stdout.readline()  # "repro broker listening on <url> ..."
    assert "listening on" in line, f"broker failed to start: {line!r}"
    url = line.split("listening on", 1)[1].strip().split()[0]
    return proc, url


class TestBrokerRestartDurability:
    """The tentpole: a SIGKILL'd *broker* must not lose the sweep.

    Worker death was already survivable (lease requeues, above); before
    the store, broker death silently dropped every in-flight submission.
    These kills are real SIGKILLs of real broker subprocesses, restarted
    on the same ``--store-dir``."""

    @pytest.mark.slow
    def test_sigkilled_broker_restart_loses_no_task_and_no_result(
        self, sweep, reference, tmp_path
    ):
        """Protocol-level: submit, finish one task, SIGKILL the broker,
        restart on the same store — the finished result and both
        unfinished tasks are all still there, and the completed sweep is
        byte-identical to SerialBackend."""
        store = tmp_path / "broker-store"
        task_ids = [f"job-{index:05d}" for index in range(len(sweep))]
        proc, url = _start_broker_proc(store, port=0)
        try:
            client = BrokerClient(url)
            client.submit(
                [
                    task_envelope(task_id, spec.to_dict(), lease_s=30.0)
                    for task_id, spec in zip(task_ids, sweep)
                ]
            )
            # One cell finishes before the crash...
            assert drain(BrokerQueueClient(url, match="job-"), max_tasks=1) == 1
            assert client.stats()["results"] == 1
            client.close()
        finally:
            proc.kill()  # ...and the broker dies mid-sweep, no goodbye
            proc.wait(timeout=10.0)
        port = int(url.rsplit(":", 1)[1])
        proc, restarted_url = _start_broker_proc(store, port=port)
        try:
            assert restarted_url == url  # same address: clients reconnect
            client = BrokerClient(url)
            stats = client.stats()
            # Zero loss: the finished payload and both remaining tasks.
            assert stats["results"] == 1
            assert stats["pending"] + stats["claimed"] == len(sweep) - 1
            # The sweep completes against the revived broker...
            drain(BrokerQueueClient(url, match="job-"), exit_when_empty=True)
            response = client.collect(match="job-")
            by_id = {env["id"]: env for env in response["results"]}
            assert sorted(by_id) == task_ids
            assert all(env.get("error") is None for env in by_id.values())
            # ...byte-identical to the serial reference.
            payloads = [strip_runtime(by_id[tid]["result"]) for tid in task_ids]
            assert canonical_payloads(payloads) == canonical_batch(reference)
            client.close()
        finally:
            proc.kill()
            proc.wait(timeout=10.0)

    @pytest.mark.slow
    def test_sweep_rides_out_a_broker_restart_end_to_end(
        self, sweep, reference, tmp_path
    ):
        """Full stack: BatchRunner + BrokerBackend + real drainers, with
        the broker SIGKILL'd and restarted mid-sweep by a chaos thread.
        The submitter's outage handling and the workers' result-POST
        retries must carry the run across the gap."""
        store = tmp_path / "broker-store"
        proc, url = _start_broker_proc(store, port=0, lease_s=TEST_LEASE_S)
        port = int(url.rsplit(":", 1)[1])
        restarted: dict = {}

        def chaos() -> None:
            watcher = BrokerClient(url, timeout_s=2.0)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    stats = watcher.stats()
                except ConnectionError:
                    time.sleep(0.1)
                    continue
                if stats["claimed"] >= 1 or stats["results"] >= 1:
                    break  # the sweep is genuinely mid-flight
                time.sleep(0.02)
            watcher.close()
            proc.kill()
            proc.wait(timeout=10.0)
            time.sleep(0.5)  # a visible outage, well under timeout_s
            restarted["proc"], restarted["url"] = _start_broker_proc(
                store, port=port, lease_s=TEST_LEASE_S
            )

        killer = threading.Thread(target=chaos, daemon=True)
        killer.start()
        backend = BrokerBackend(
            url, workers=2, lease_s=TEST_LEASE_S, timeout_s=120.0
        )
        try:
            batch = BatchRunner(sweep, backend=backend, cache=False).run()
        finally:
            killer.join(timeout=90.0)
            if "proc" in restarted:
                restarted["proc"].kill()
                restarted["proc"].wait(timeout=10.0)
        assert restarted.get("url") == url  # the restart really happened
        assert canonical(batch) == canonical(reference)


class TestFileQueueLeaseUnits:
    """requeue_expired_claims against hand-built queue state."""

    def put_claim(self, root, task_id, lease_s=0.2, max_attempts=3, attempts=0):
        envelope = task_envelope(task_id, {"cell": task_id}, lease_s, max_attempts)
        envelope["attempts"] = attempts
        _atomic_write_json(root / CLAIMED_DIR / f"{task_id}.json", envelope)

    def test_fresh_claim_is_left_alone(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        self.put_claim(root, "j-00000", lease_s=60.0)
        assert requeue_expired_claims(root) == (0, 0)
        assert (root / CLAIMED_DIR / "j-00000.json").exists()

    def test_expired_claim_requeues_with_attempts_bumped(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        self.put_claim(root, "j-00000", lease_s=0.05)
        time.sleep(0.1)
        assert requeue_expired_claims(root) == (1, 0)
        assert not (root / CLAIMED_DIR / "j-00000.json").exists()
        requeued = json.loads(
            (root / TASKS_DIR / "j-00000.json").read_text(encoding="utf-8")
        )
        assert requeued["attempts"] == 1
        assert requeued["spec"] == {"cell": "j-00000"}

    def test_exhausted_claim_becomes_an_error_envelope(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        self.put_claim(root, "j-00000", lease_s=0.05, max_attempts=2, attempts=1)
        time.sleep(0.1)
        assert requeue_expired_claims(root) == (0, 1)
        envelope = json.loads(
            (root / RESULTS_DIR / "j-00000.json").read_text(encoding="utf-8")
        )
        assert "j-00000" in envelope["error"]
        assert "2 time(s)" in envelope["error"]
        assert envelope["attempts"] == 2
        assert not (root / TASKS_DIR / "j-00000.json").exists()

    def test_match_scopes_the_sweep(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        self.put_claim(root, "mine-00000", lease_s=0.05)
        self.put_claim(root, "theirs-00000", lease_s=0.05)
        time.sleep(0.1)
        assert requeue_expired_claims(root, match="mine-") == (1, 0)
        # The foreign claim is untouched: its own submitter (or an
        # unscoped fleet worker) owns its recovery.
        assert (root / CLAIMED_DIR / "theirs-00000.json").exists()

    def test_stale_claimed_leftovers_are_reaped_with_results(self, tmp_path):
        """Pre-lease leftovers: claims abandoned by long-dead submissions
        are collected on the same paranoid week horizon as orphan
        results (the satellite fix to _reap_stale_results)."""
        import os

        backend = WorkQueueBackend(tmp_path / "queue", workers=1, timeout_s=60.0)
        root = ensure_queue_dirs(tmp_path / "queue")
        orphan_claim = root / CLAIMED_DIR / "dead-00000.json"
        fresh_claim = root / CLAIMED_DIR / "live-00000.json"
        for path in (orphan_claim, fresh_claim):
            path.write_text("{}", encoding="utf-8")
        ancient = time.time() - 30 * 24 * 3600
        os.utime(orphan_claim, (ancient, ancient))
        backend.run([FAST_SPEC.to_dict()])
        assert not orphan_claim.exists()
        assert fresh_claim.exists()  # could be someone's live lease: kept
