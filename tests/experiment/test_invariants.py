"""Property/invariant suite over a seeded spec grid (Sec. 3 constraints).

These are the invariants any execution backend must preserve and any
simulation change must keep true:

* Jain's fairness index of achieved throughputs lies in ``[1/n, 1]``;
* per-flow achieved and optimized rates are non-negative;
* LIR estimates — analytic, synthetic, and simulator-measured — lie in
  ``[0, 1]``;
* optimizer outputs respect the Section 3 capacity constraints: the
  optimized link-rate vector is inside the extreme-point polytope, and
  every maximal clique of the conflict graph time-shares at most the
  whole channel (``sum y_l / c_l <= 1``).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import jain_fairness_index
from repro.core.cliques import maximal_cliques
from repro.core.lir_error import PairSample, synthetic_pair_from_lir
from repro.experiment import (
    ChurnSpec,
    ControllerSpec,
    Experiment,
    ExperimentSpec,
    FlowSpec,
    MobilitySpec,
    ProbingSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

# --------------------------------------------------------------------------
# The seeded grid: scenarios x controllers — canned presets plus
# generator-built scenarios (grid and parking-lot topologies with
# controller-managed workloads) — all cheap enough for tier-1.
# --------------------------------------------------------------------------
def _grid() -> list[ExperimentSpec]:
    chain = ScenarioSpec(
        scenario="chain",
        flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
    )
    specs = []
    for seed, controller in [
        (1, ControllerSpec(alpha=1.0, probing_window=40)),
        (2, ControllerSpec(alpha=0.0, probing_window=40)),
        (3, ControllerSpec(enabled=False)),
    ]:
        specs.append(
            ExperimentSpec(
                scenario=chain.with_seed(seed),
                probing=ProbingSpec(warmup_s=5.0),
                controller=controller,
                cycles=1,
                cycle_measure_s=2.0,
                settle_s=0.5,
                label=f"grid-chain-{seed}",
            )
        )
    specs.append(
        ExperimentSpec(
            scenario=ScenarioSpec(scenario="starvation", seed=0, data_rate_mbps=1),
            probing=ProbingSpec(warmup_s=8.0),
            controller=ControllerSpec(alpha=1.0, probing_window=60),
            cycles=1,
            cycle_measure_s=4.0,
            settle_s=1.0,
            label="grid-starvation",
        )
    )
    # Generator-built scenarios: the invariants must hold for the open
    # scenario space too, not just the four canned presets.
    for label, topology, workload in [
        (
            "grid-generated-grid",
            TopologySpec(kind="grid", rows=2, cols=2, spacing_m=55.0),
            WorkloadSpec(generator="saturated_udp", num_flows=2, max_hops=2, rate_bps=0.0),
        ),
        (
            "grid-generated-parking-lot",
            TopologySpec(kind="parking_lot", num_nodes=3, spacing_m=55.0),
            WorkloadSpec(generator="gravity", num_flows=2, max_hops=3, rate_bps=0.0),
        ),
    ]:
        specs.append(
            ExperimentSpec(
                scenario=ScenarioSpec(
                    scenario="generated",
                    seed=4,
                    topology=topology,
                    workload=workload,
                    rate_mode="11",
                ),
                probing=ProbingSpec(warmup_s=5.0),
                controller=ControllerSpec(alpha=1.0, probing_window=40),
                cycles=1,
                cycle_measure_s=2.0,
                settle_s=0.5,
                label=label,
            )
        )
    # Dynamic scenarios: the same invariants must hold per cycle while
    # nodes move (waypoint epochs rebuilding the power tables mid-run)
    # and while a relay churns out and back in.
    for label, mobility, churn in [
        (
            "grid-dynamic-mobility",
            MobilitySpec(model="waypoint", epoch_s=0.5, speed_mps=1.5),
            None,
        ),
        (
            "grid-dynamic-churn",
            None,
            ChurnSpec(num_events=1, start_s=5.5, end_s=6.0, down_s=0.5),
        ),
    ]:
        specs.append(
            ExperimentSpec(
                scenario=ScenarioSpec(
                    scenario="generated",
                    seed=5,
                    topology=TopologySpec(kind="grid", rows=2, cols=2, spacing_m=55.0),
                    workload=WorkloadSpec(
                        generator="saturated_udp", num_flows=2, max_hops=2, rate_bps=0.0
                    ),
                    rate_mode="11",
                    mobility=mobility,
                    churn=churn,
                ),
                probing=ProbingSpec(warmup_s=5.0),
                controller=ControllerSpec(alpha=1.0, probing_window=40),
                cycles=1,
                cycle_measure_s=2.0,
                settle_s=0.5,
                label=label,
            )
        )
    return specs


@pytest.fixture(scope="module")
def grid_results():
    return [Experiment(spec, keep_decisions=True).run(cache=False) for spec in _grid()]


@pytest.mark.slow
class TestExperimentInvariants:
    def test_throughputs_non_negative(self, grid_results):
        for result in grid_results:
            for cycle in result.cycles:
                assert all(v >= 0.0 for v in cycle.achieved_bps.values())
                assert all(v >= 0.0 for v in cycle.target_bps.values())

    def test_jain_index_bounds(self, grid_results):
        for result in grid_results:
            n = len(result.flow_ids)
            assert 1.0 / n - 1e-12 <= result.jain_index <= 1.0 + 1e-12

    def test_optimizer_respects_section3_constraints(self, grid_results):
        checked = 0
        for result in grid_results:
            for cycle in result.cycles:
                decision = cycle.decision
                if decision is None:  # noRC baselines decide nothing
                    continue
                checked += 1
                region = decision.region
                y = decision.optimization.link_rates
                assert (y >= -1e-6).all()
                scale = float(region.extreme_points.max())
                # Inside the extreme-point polytope (free disposal), up
                # to solver slack.
                assert region.contains(y.clip(min=0.0), tolerance=1e-6 * scale)
                # Clique capacity: every maximal clique of the conflict
                # graph time-shares at most the whole channel.
                capacities = {
                    link: est.capacity_bps
                    for link, est in decision.link_estimates.items()
                }
                for clique in maximal_cliques(decision.conflict_graph.adjacency):
                    share = 0.0
                    for link in clique:
                        rate = float(y[region.link_index(link)])
                        capacity = capacities[link]
                        if capacity <= 0.0:
                            assert rate <= 1e-6 * scale
                            continue
                        share += rate / capacity
                    assert share <= 1.0 + 1e-6
        # The grid genuinely exercises the optimizer — including on the
        # generator-built grid and parking-lot scenarios and on the
        # dynamic mobility/churn rows.
        assert checked >= 7

    def test_lir_estimates_in_unit_interval(self, grid_results):
        """Measured pair throughputs can only realize LIRs in [0, 1]."""
        from repro.sim import MeshNetwork, carrier_sense_pair, no_shadowing_propagation
        from repro.sim.measurement import measure_pair

        topo = carrier_sense_pair()
        network = MeshNetwork(
            topo.positions,
            seed=7,
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
        )
        flow1 = network.add_udp_flow(list(topo.links[0]))
        flow2 = network.add_udp_flow(list(topo.links[1]))
        pair = measure_pair(network, flow1, flow2, duration_s=1.5)
        assert 0.0 <= pair.lir <= 1.0 + 1e-9
        assert 0.0 <= PairSample(pair.c11, pair.c22, pair.c31, pair.c32).lir <= 1.0 + 1e-9


# --------------------------------------------------------------------------
# Pure-math properties (hypothesis): no simulation involved, always fast.
# --------------------------------------------------------------------------
_rates = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestMetricProperties:
    @given(st.lists(_rates, min_size=1, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_jain_index_always_in_bounds(self, values):
        index = jain_fairness_index(values)
        n = len(values)
        # The bound is exact in real arithmetic; in floats, (sum x)^2 /
        # (n * sum x^2) can overshoot by ~1e-8 for near-equal values of
        # large magnitude (hypothesis finds such cases), so the epsilon
        # admits rounding noise without weakening the invariant.
        assert 1.0 / n - 1e-6 <= index <= 1.0 + 1e-6

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_jain_index_of_equal_allocation_is_one(self, values):
        equal = [values[0]] * len(values)
        assert math.isclose(jain_fairness_index(equal), 1.0, rel_tol=1e-9)


class TestLirProperties:
    @given(
        lir=st.floats(min_value=0.0, max_value=1.0),
        c11=st.floats(min_value=1e-3, max_value=1e7),
        c22=st.floats(min_value=1e-3, max_value=1e7),
        split=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
    )
    @settings(max_examples=200, deadline=None)
    def test_synthetic_pairs_realize_lir_in_unit_interval(self, lir, c11, c22, split):
        sample = synthetic_pair_from_lir(lir, c11=c11, c22=c22, split=split)
        assert 0.0 <= sample.lir <= 1.0 + 1e-9
        assert 0.0 <= sample.c31 <= sample.c11 + 1e-9
        assert 0.0 <= sample.c32 <= sample.c22 + 1e-9

    @given(
        c11=st.floats(min_value=1e-3, max_value=1e7),
        c22=st.floats(min_value=1e-3, max_value=1e7),
        f1=st.floats(min_value=0.0, max_value=1.0),
        f2=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_physical_pair_has_lir_in_unit_interval(self, c11, c22, f1, f2):
        """Simultaneous throughputs cannot exceed isolated ones, so the
        LIR of any physically realizable pair lies in [0, 1]."""
        sample = PairSample(c11=c11, c22=c22, c31=f1 * c11, c32=f2 * c22)
        assert 0.0 <= sample.lir <= 1.0 + 1e-9
