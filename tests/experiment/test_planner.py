"""SweepPlanner: dedup, cache resolution, cost ordering, empty-sweep stats."""

from __future__ import annotations

import pytest

from repro.experiment import (
    BatchResult,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    PlannerStats,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
    SweepPlanner,
    TopologySpec,
    estimate_cost_s,
    seed_sweep,
)
from repro.experiment.planner import _node_count


def _spec(seed: int = 0, **kwargs) -> ExperimentSpec:
    kwargs.setdefault("cycles", 1)
    kwargs.setdefault("cycle_measure_s", 1.0)
    kwargs.setdefault("settle_s", 0.2)
    return ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="chain", seed=seed, flows=(FlowSpec("udp", (0, 1, 2)),)
        ),
        controller=ControllerSpec(enabled=False),
        **kwargs,
    )


class TestDedup:
    def test_identical_specs_collapse_to_one_job(self):
        payloads = [_spec(0).to_dict(), _spec(1).to_dict(), _spec(0).to_dict()]
        plan = SweepPlanner().plan(payloads)
        assert plan.stats.total == 3
        assert plan.stats.unique == 2 and plan.stats.duplicates == 1
        assert plan.stats.executed == 2
        by_first_index = sorted(job.indices[0] for job in plan.jobs)
        assert by_first_index == [0, 1]
        duplicate_job = next(job for job in plan.jobs if len(job.indices) == 2)
        assert duplicate_job.indices == (0, 2)

    def test_scatter_fills_every_duplicate_slot(self):
        payloads = [_spec(0).to_dict()] * 3
        plan = SweepPlanner().plan(payloads)
        assert len(plan.jobs) == 1
        plan.scatter(plan.jobs[0], {"answer": 42})
        assert plan.results == [{"answer": 42}] * 3

    def test_distinct_specs_stay_distinct(self):
        payloads = [s.to_dict() for s in seed_sweep(_spec(), range(4))]
        plan = SweepPlanner().plan(payloads)
        assert plan.stats.unique == 4 and plan.stats.duplicates == 0

    def test_uncached_plan_reports_no_cache_misses(self):
        """No cache consulted means no misses — matching BatchResult's
        convention, not `total` phantom misses."""
        stats = SweepPlanner().plan([_spec(0).to_dict()] * 3).stats
        assert not stats.cache_used
        assert stats.cache_hits == 0 and stats.cache_misses == 0
        assert stats.as_dict()["cache_misses"] == 0


class TestCacheResolution:
    def test_hits_resolve_up_front_and_count_per_slot(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit = _spec(0).to_dict()
        miss = _spec(1).to_dict()
        cache.put_payload(hit, {"cached": True})
        plan = SweepPlanner(cache).plan([hit, miss, hit])
        assert plan.stats.cache_hits == 2  # both duplicate slots
        assert plan.stats.cache_misses == 1
        assert [job.payload for job in plan.jobs] == [miss]
        assert plan.results[0] == {"cached": True} == plan.results[2]
        assert plan.results[1] is None

    def test_unique_spec_looked_up_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit = _spec(0).to_dict()
        cache.put_payload(hit, {"cached": True})
        cache.stats.hits = cache.stats.misses = 0
        SweepPlanner(cache).plan([hit] * 5)
        assert cache.stats.lookups == 1


class TestCostOrdering:
    def test_slowest_cells_first(self):
        short = _spec(0).to_dict()
        long = _spec(1, cycles=3, cycle_measure_s=5.0).to_dict()
        plan = SweepPlanner().plan([short, long])
        assert [job.indices[0] for job in plan.jobs] == [1, 0]
        assert plan.jobs[0].est_cost_s > plan.jobs[1].est_cost_s
        assert plan.stats.est_cost_s == pytest.approx(
            sum(job.est_cost_s for job in plan.jobs)
        )

    def test_equal_cost_keeps_submission_order(self):
        payloads = [s.to_dict() for s in seed_sweep(_spec(), range(3))]
        plan = SweepPlanner().plan(payloads)
        assert [job.indices[0] for job in plan.jobs] == [0, 1, 2]

    def test_warmup_counts_only_with_controller_enabled(self):
        base = dict(
            scenario=ScenarioSpec(
                scenario="chain", flows=(FlowSpec("udp", (0, 1, 2)),)
            ),
            probing=ProbingSpec(warmup_s=30.0),
            cycles=1,
            cycle_measure_s=2.0,
            settle_s=0.5,
        )
        with_controller = ExperimentSpec(
            controller=ControllerSpec(alpha=1.0), **base
        )
        no_controller = ExperimentSpec(
            controller=ControllerSpec(enabled=False), **base
        )
        assert estimate_cost_s(with_controller.to_dict()) > estimate_cost_s(
            no_controller.to_dict()
        )

    def test_node_count_heuristics(self):
        assert _node_count({"topology": {"kind": "chain", "num_nodes": 7}}) == 7
        assert _node_count({"topology": {"kind": "grid", "rows": 3, "cols": 4}}) == 12
        assert _node_count({"topology": {"kind": "testbed"}}) == 18
        positions = {"kind": "positions", "positions": [[0, 0, 0], [1, 1, 1]]}
        assert _node_count({"topology": positions}) == 2
        assert _node_count({"scenario": "starvation", "topology": None}) == 3
        assert _node_count({"scenario": "random_multiflow", "topology": None}) == 18
        assert _node_count({"scenario": "never-heard-of-it"}) == 18

    def test_more_nodes_cost_more(self):
        small = _spec(0).to_dict()
        big = _spec(0).to_dict()
        big["scenario"]["topology"] = TopologySpec(
            kind="chain", num_nodes=12
        ).to_dict()
        assert estimate_cost_s(big) > estimate_cost_s(small)


class TestEmptySweeps:
    """Satellite: no division-by-zero anywhere on empty input."""

    def test_empty_plan(self):
        plan = SweepPlanner().plan([])
        assert plan.jobs == [] and plan.results == []
        assert plan.stats.total == 0
        assert plan.stats.cache_hit_rate == 0.0
        assert plan.stats.dedup_rate == 0.0

    def test_empty_planner_stats(self):
        stats = PlannerStats()
        assert stats.cache_hit_rate == 0.0
        assert stats.dedup_rate == 0.0
        assert stats.as_dict()["cache_hit_rate"] == 0.0

    def test_empty_batch_result_hit_rate(self):
        assert BatchResult(results=[]).cache_hit_rate == 0.0

    def test_stats_as_dict_round_trips_json(self):
        import json

        stats = SweepPlanner().plan([_spec(0).to_dict()]).stats
        assert json.loads(json.dumps(stats.as_dict()))["total"] == 1


class TestLearnedCosts:
    """Satellite: the planner prefers measured per-digest wall clocks
    (recorded in the ResultCache index on writeback) over the static
    estimate_cost_s heuristic when ordering misses slowest-first."""

    def test_measured_costs_override_a_wrong_static_order(self, tmp_path):
        # Static heuristic says `big` (5x the simulated seconds) goes
        # first; the ledger knows better.
        small = _spec(0).to_dict()
        big = _spec(1, cycles=5).to_dict()
        cache = ResultCache(tmp_path)
        cache.put_payload(small, {"runtime": {"wall_time_s": 9.0}})
        cache.put_payload(big, {"runtime": {"wall_time_s": 0.3}})
        cache.clear()
        plan = SweepPlanner(cache).plan([small, big])
        assert [job.indices[0] for job in plan.jobs] == [0, 1]
        assert all(job.measured for job in plan.jobs)
        assert plan.stats.measured_jobs == 2
        assert plan.jobs[0].cost_s == 9.0 and plan.jobs[0].est_cost_s != 9.0

    def test_static_order_without_a_cache_is_unchanged(self):
        small = _spec(0).to_dict()
        big = _spec(1, cycles=5).to_dict()
        plan = SweepPlanner().plan([small, big])
        assert [job.indices[0] for job in plan.jobs] == [1, 0]
        assert plan.stats.measured_jobs == 0
        assert all(job.cost_s == job.est_cost_s for job in plan.jobs)

    def test_unmeasured_jobs_are_rescaled_onto_the_measured_scale(self, tmp_path):
        # One measured job calibrates the wall-clock scale; the
        # unmeasured job keeps its heuristic, rescaled by the ratio.
        measured = _spec(0).to_dict()
        unmeasured = _spec(1).to_dict()  # identical estimate
        cache = ResultCache(tmp_path)
        cache.put_payload(measured, {"runtime": {"wall_time_s": 4.0}})
        cache.clear()
        plan = SweepPlanner(cache).plan([measured, unmeasured])
        by_slot = {job.indices[0]: job for job in plan.jobs}
        ratio = 4.0 / by_slot[0].est_cost_s
        assert by_slot[0].cost_s == 4.0
        assert by_slot[1].cost_s == pytest.approx(by_slot[1].est_cost_s * ratio)

    def test_batch_runner_writeback_feeds_the_ledger(self, tmp_path):
        from repro.experiment import BatchRunner, SerialBackend

        spec = ExperimentSpec(
            scenario=ScenarioSpec(
                scenario="chain", seed=0, flows=(FlowSpec("udp", (0, 1, 2)),)
            ),
            controller=ControllerSpec(enabled=False),
            cycles=1,
            cycle_measure_s=0.5,
            settle_s=0.1,
        )
        cache = ResultCache(tmp_path)
        BatchRunner([spec], backend=SerialBackend(), cache=cache).run()
        cost = cache.measured_cost_s(spec.to_dict())
        assert cost is not None and cost > 0.0

    def test_node_count_heuristics_for_generated_kinds(self):
        from repro.experiment.planner import _flow_count

        assert _node_count({"topology": {"kind": "ring", "num_nodes": 9}}) == 9
        assert _node_count({"topology": {"kind": "line", "num_nodes": 5}}) == 5
        assert _node_count({"topology": {"kind": "random_disk", "num_nodes": 11}}) == 11
        assert _node_count({"topology": {"kind": "binary_tree", "depth": 4}}) == 15
        assert _node_count({"topology": {"kind": "parking_lot", "num_nodes": 4}}) == 7
        assert _flow_count({"workload": {"num_flows": 6}}) == 6
        assert _flow_count({"flows": [1, 2, 3]}) == 3
        assert _flow_count({"scenario": "starvation"}) == 2

    def test_generated_scenarios_cost_by_their_real_size(self):
        from repro.experiment import TopologySpec as TS
        from repro.experiment import WorkloadSpec

        def generated(topology):
            return ExperimentSpec(
                scenario=ScenarioSpec(
                    scenario="generated",
                    topology=topology,
                    workload=WorkloadSpec(num_flows=2),
                ),
                controller=ControllerSpec(enabled=False),
                cycles=1,
                cycle_measure_s=1.0,
                settle_s=0.2,
            ).to_dict()

        small = generated(TS(kind="grid", rows=2, cols=2))
        big = generated(TS(kind="grid", rows=4, cols=4))
        assert estimate_cost_s(big) > estimate_cost_s(small)

    def test_more_flows_cost_more(self):
        from repro.experiment import WorkloadSpec

        def with_flows(n):
            return ExperimentSpec(
                scenario=ScenarioSpec(
                    scenario="generated",
                    topology=TopologySpec(kind="grid", rows=2, cols=2),
                    workload=WorkloadSpec(num_flows=n),
                ),
                controller=ControllerSpec(enabled=False),
                cycles=1,
                cycle_measure_s=1.0,
                settle_s=0.2,
            ).to_dict()

        assert estimate_cost_s(with_flows(8)) > estimate_cost_s(with_flows(1))
