"""Dynamic scenarios through the experiment stack: spec round-trips and
digests at schema v3, end-to-end mobility+churn runs, monitor series
riding the cache and batch-backend payload paths byte-identically, and
the planner's dynamics-aware cost ordering."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiment import (
    SPEC_SCHEMA_VERSION,
    BatchRunner,
    ChurnSpec,
    ControllerSpec,
    ExperimentResult,
    ExperimentSpec,
    MobilitySpec,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
    estimate_cost_s,
    run_experiment,
    spec_digest,
)


def _dynamic_spec(seed: int = 3, monitors: tuple[str, ...] = ()) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="generated",
            seed=seed,
            topology=TopologySpec(kind="grid", rows=2, cols=2, spacing_m=60.0),
            workload=WorkloadSpec(generator="saturated_udp", num_flows=2, max_hops=2),
            rate_mode="11",
            mobility=MobilitySpec(model="waypoint", epoch_s=0.5, speed_mps=2.0),
            churn=ChurnSpec(num_events=1, start_s=0.5, end_s=1.5, down_s=0.5),
        ),
        controller=ControllerSpec(enabled=False),
        probing=ProbingSpec(warmup_s=1.0),
        cycles=1,
        cycle_measure_s=2.0,
        settle_s=0.2,
        monitors=monitors,
        monitor_interval_s=0.5,
        label="dynamics-smoke",
    )


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestSpecLayer:
    def test_schema_version_is_3(self):
        assert SPEC_SCHEMA_VERSION == 3

    def test_mobility_round_trip(self):
        spec = MobilitySpec(model="drift", epoch_s=0.25, drift_sigma_m=4.0)
        assert MobilitySpec.from_dict(spec.to_dict()) == spec
        assert "model" not in spec.params()
        assert spec.params()["drift_sigma_m"] == 4.0

    def test_churn_round_trip(self):
        spec = ChurnSpec(num_events=2, start_s=1.0, end_s=9.0, down_s=0.0)
        assert ChurnSpec.from_dict(spec.to_dict()) == spec

    def test_experiment_spec_round_trip(self):
        spec = _dynamic_spec(monitors=("pdr", "throughput"))
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert spec_digest(rebuilt) == spec_digest(spec)

    def test_dynamics_axes_change_the_digest(self):
        base = _dynamic_spec()
        static = ExperimentSpec.from_dict(
            {**base.to_dict(), "scenario": {**base.scenario.to_dict(), "mobility": None, "churn": None}}
        )
        no_churn = ExperimentSpec.from_dict(
            {**base.to_dict(), "scenario": {**base.scenario.to_dict(), "churn": None}}
        )
        digests = {spec_digest(base), spec_digest(static), spec_digest(no_churn)}
        assert len(digests) == 3

    def test_monitors_change_the_digest(self):
        assert spec_digest(_dynamic_spec(monitors=("pdr",))) != spec_digest(_dynamic_spec())

    def test_mobility_requires_generated_scenario(self):
        with pytest.raises(SpecError):
            ScenarioSpec(scenario="chain", mobility=MobilitySpec())
        with pytest.raises(SpecError):
            ScenarioSpec(scenario="starvation", churn=ChurnSpec())

    def test_unknown_mobility_model_rejected(self):
        with pytest.raises(SpecError):
            MobilitySpec(model="teleport")

    def test_monitor_validation(self):
        with pytest.raises(SpecError):
            ExperimentSpec(scenario=ScenarioSpec(), monitors=("nonsense",))
        with pytest.raises(SpecError):
            ExperimentSpec(scenario=ScenarioSpec(), monitors=("pdr", "pdr"))
        with pytest.raises(SpecError):
            ExperimentSpec(
                scenario=ScenarioSpec(), monitors=("pdr",), monitor_interval_s=0.0
            )

    def test_describe_names_the_dynamics(self):
        described = _dynamic_spec().scenario.describe()
        assert "waypoint mobility" in described
        assert "churn" in described


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return run_experiment(
            _dynamic_spec(monitors=("pdr", "throughput", "e2e_latency")),
            keep_decisions=False,
            cache=False,
        )

    def test_dynamics_counters_land_in_meta(self, result):
        dynamics = result.meta["dynamics"]
        assert dynamics["mobility_model"] == "waypoint"
        assert dynamics["epochs_applied"] > 0
        assert dynamics["fails_applied"] == 1
        assert dynamics["joins_applied"] == 1
        assert dynamics["churn_schedule"]

    def test_monitor_series_are_emitted(self, result):
        assert set(result.monitors) == {"pdr", "throughput", "e2e_latency"}
        for series_list in result.monitors.values():
            assert [s.flow_id for s in series_list] == sorted(result.flow_ids)
            for series in series_list:
                assert len(series.times) == len(series.values) > 0
                assert series.times == tuple(sorted(series.times))

    def test_pdr_values_are_finite_and_non_negative(self, result):
        # A window's ratio can exceed 1.0 when a prior window's queue
        # backlog drains into it; it must never go negative or blow up.
        for series in result.monitors["pdr"]:
            assert all(v >= 0.0 for v in series.values)
            assert all(v < 100.0 for v in series.values)

    def test_payload_round_trip_is_exact(self, result):
        payload = result.to_dict(include_runtime=False)
        rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(payload)))
        assert _canonical(rebuilt.to_dict(include_runtime=False)) == _canonical(payload)

    def test_cache_round_trip_is_byte_identical(self, result, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(result)
        cached = cache.get(result.spec)
        assert cached is not None
        assert _canonical(cached.to_dict(include_runtime=False)) == _canonical(
            result.to_dict(include_runtime=False)
        )

    def test_rerun_is_deterministic(self, result):
        again = run_experiment(
            _dynamic_spec(monitors=("pdr", "throughput", "e2e_latency")),
            keep_decisions=False,
            cache=False,
        )
        assert _canonical(again.to_dict(include_runtime=False)) == _canonical(
            result.to_dict(include_runtime=False)
        )


class TestSchedulerIdentity:
    def test_both_schedulers_agree_on_dynamic_payloads(self, monkeypatch):
        payloads = {}
        for kind in ("calendar", "heap"):
            monkeypatch.setenv("REPRO_SIM_SCHEDULER", kind)
            result = run_experiment(
                _dynamic_spec(monitors=("pdr", "throughput")),
                keep_decisions=False,
                cache=False,
            )
            payloads[kind] = _canonical(result.to_dict(include_runtime=False))
        assert payloads["calendar"] == payloads["heap"]


class TestCrossBackendByteIdentityDynamics:
    def test_dynamic_sweep_matches_serial_reference_on_ambient_backend(self):
        sweep = [_dynamic_spec(seed, monitors=("pdr", "throughput")) for seed in (3, 4)]
        ambient = BatchRunner(sweep, cache=False).run()
        reference = BatchRunner(sweep, backend="serial", cache=False).run()
        expected = os.environ.get("REPRO_BATCH_BACKEND") or "process"
        assert ambient.backend == expected
        assert _canonical(ambient.to_dicts(include_runtime=False)) == _canonical(
            reference.to_dicts(include_runtime=False)
        )


class TestPlannerCosts:
    def test_dynamics_raise_the_estimate(self):
        dynamic = _dynamic_spec().to_dict()
        static = dict(dynamic)
        static["scenario"] = {
            **dynamic["scenario"], "mobility": None, "churn": None
        }
        assert estimate_cost_s(dynamic) > estimate_cost_s(static)

    def test_static_payloads_keep_their_historical_estimate(self):
        static = _dynamic_spec().to_dict()
        static["scenario"] = {**static["scenario"], "mobility": None, "churn": None}
        node_count = 4  # 2x2 grid
        flows = 2
        # controller disabled -> no warmup term; horizon is one 2 s cycle
        expected = 2.0 * node_count * (1.0 + 0.25 * (flows - 1))
        assert estimate_cost_s(static) == pytest.approx(expected)


class TestProfileCli:
    def test_dynamic_cell_is_registered(self):
        from repro.sim.profile import _profile_specs

        specs = _profile_specs()
        assert "fig14-cell-mobile" in specs
        spec = specs["fig14-cell-mobile"]
        assert spec.scenario.mobility is not None
        assert spec.scenario.churn is not None
