"""Tests for mesh-node forwarding, the probing system and Ad Hoc Probe."""

import pytest

from repro.mac.nominal import nominal_throughput_bps
from repro.net.adhoc_probe import AdHocProbe
from repro.net.packet import Packet, PacketKind
from repro.phy.radio import RATE_11MBPS
from repro.sim import MeshNetwork, chain_topology, no_shadowing_propagation
from repro.sim.measurement import measure_isolated


def _packet(src, dst, flow_id=0, size=1000, kind=PacketKind.UDP):
    return Packet(kind=kind, src=src, dst=dst, flow_id=flow_id, payload_bytes=size, created_at=0.0)


class TestNodeForwarding:
    def test_local_delivery_without_radio(self, chain_network):
        node = chain_network.node(0)
        delivered = []
        node.add_delivery_handler(lambda packet, prev: delivered.append(packet))
        assert node.send_packet(_packet(0, 0))
        assert len(delivered) == 1

    def test_no_route_drop(self, chain_network):
        node = chain_network.node(0)
        assert not node.send_packet(_packet(0, 2))
        assert node.stats.no_route_drops == 1

    def test_multi_hop_forwarding(self, chain_network):
        chain_network.install_path([0, 1, 2])
        delivered = []
        chain_network.node(2).add_delivery_handler(lambda p, prev: delivered.append(p))
        chain_network.node(0).send_packet(_packet(0, 2))
        chain_network.run(0.2)
        assert len(delivered) == 1
        assert delivered[0].hops == 2
        assert chain_network.node(1).stats.forwarded == 1

    def test_reverse_route_installed_for_bidirectional_paths(self, chain_network):
        chain_network.install_path([0, 1, 2], bidirectional=True)
        assert chain_network.node(2).next_hop(0) == 1
        assert chain_network.node(1).next_hop(0) == 0

    def test_frame_size_includes_headers(self, chain_network):
        node = chain_network.node(0)
        udp = _packet(0, 1, size=1000)
        tcp = _packet(0, 1, size=1000, kind=PacketKind.TCP_DATA)
        assert node.frame_size_for(udp) > 1000
        assert node.frame_size_for(tcp) > 1000

    def test_link_rate_override(self, chain_network):
        chain_network.set_link_rate((0, 1), 1)
        assert chain_network.link_rate((0, 1)).bps == pytest.approx(1e6)
        assert chain_network.link_rate((1, 2)).bps == pytest.approx(11e6)


class TestProbingSystem:
    @pytest.fixture
    def probed_network(self):
        net = MeshNetwork(
            chain_topology(3, spacing_m=60.0),
            seed=2,
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
        )
        net.enable_probing(period_s=0.2)
        net.run(20.0)
        return net

    def test_probes_are_sent_periodically(self, probed_network):
        probing = probed_network.probing
        for node in probed_network.node_ids:
            assert probing.probes_sent(node, "data") > 50
            assert probing.probes_sent(node, "ack") > 50

    def test_neighbours_receive_probes(self, probed_network):
        probing = probed_network.probing
        assert probing.loss_rate(0, 1, "data") < 0.1
        assert probing.loss_rate(1, 0, "ack") < 0.1

    def test_distant_nodes_lose_many_probes(self, probed_network):
        probing = probed_network.probing
        # Node 0 and node 2 are 120 m apart: 11 Mb/s DATA probes suffer
        # heavy channel losses, unlike the adjacent 60 m links.
        assert probing.loss_rate(0, 2, "data") > 0.15
        assert probing.loss_rate(0, 2, "data") > 5 * probing.loss_rate(0, 1, "data")

    def test_loss_series_length_matches_window(self, probed_network):
        probing = probed_network.probing
        series = probing.loss_series(0, 1, "data", last_n=40)
        assert series.size == 40
        assert set(series.tolist()) <= {0, 1}

    def test_link_loss_combines_directions(self, probed_network):
        probing = probed_network.probing
        combined = probing.link_loss_rate(0, 1)
        assert combined >= probing.loss_rate(0, 1, "data") - 1e-9

    def test_unknown_sender_has_full_loss(self, probed_network):
        probing = probed_network.probing
        assert probing.loss_rate(0, 99, "data") >= 0.0
        assert probing.loss_series(99, 0, "data").size == 0

    def test_stop_halts_probing(self, probed_network):
        probing = probed_network.probing
        probing.stop()
        before = probing.probes_sent(0, "data")
        probed_network.run(2.0)
        assert probing.probes_sent(0, "data") <= before + 1


class TestAdHocProbe:
    def test_estimates_near_nominal_on_clean_link(self):
        """Ad Hoc Probe tracks the nominal rate — the paper's Figure 11
        over-estimation baseline."""
        net = MeshNetwork(
            chain_topology(2, spacing_m=50.0),
            seed=5,
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
        )
        net.install_path([0, 1])
        probe = AdHocProbe(net.sim, net.node(0), net.node(1), pair_interval_s=0.1)
        probe.start(num_pairs=60)
        net.run(10.0)
        estimate = probe.capacity_estimate_bps()
        assert estimate is not None
        nominal = nominal_throughput_bps(1472, RATE_11MBPS)
        assert estimate == pytest.approx(nominal, rel=0.35)

    def test_overestimates_lossy_link_capacity(self):
        """On a lossy link the true maxUDP drops but Ad Hoc Probe barely moves."""
        lossy = MeshNetwork(
            chain_topology(2, spacing_m=50.0),
            seed=6,
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
            link_error_override={(0, 1): 0.45, (1, 0): 0.0},
        )
        lossy.install_path([0, 1])
        flow = lossy.add_udp_flow([0, 1])
        max_udp = measure_isolated(lossy, flow, duration_s=2.0).throughput_bps
        probe = AdHocProbe(lossy.sim, lossy.node(0), lossy.node(1), pair_interval_s=0.1)
        probe.start(num_pairs=80)
        lossy.run(10.0)
        estimate = probe.capacity_estimate_bps()
        assert estimate is not None
        assert estimate > 1.3 * max_udp

    def test_requires_positive_pair_count(self, chain_network):
        probe = AdHocProbe(chain_network.sim, chain_network.node(0), chain_network.node(1))
        with pytest.raises(ValueError):
            probe.start(0)

    def test_no_samples_returns_none(self, chain_network):
        probe = AdHocProbe(chain_network.sim, chain_network.node(0), chain_network.node(1))
        assert probe.capacity_estimate_bps() is None
