"""Tests for ETX/ETT metrics, Dijkstra routing and the routing matrix."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net.routing import (
    FlowRoute,
    Router,
    build_routing_matrix,
    dijkstra,
    ett,
    etx,
    path_loss_probability,
)
from repro.phy.radio import RATE_1MBPS, RATE_11MBPS


class TestEtxEtt:
    def test_etx_perfect_link(self):
        assert etx(0.0, 0.0) == pytest.approx(1.0)

    def test_etx_symmetrical_loss(self):
        assert etx(0.5, 0.0) == pytest.approx(2.0)
        assert etx(0.0, 0.5) == pytest.approx(2.0)

    def test_etx_dead_link_is_infinite(self):
        assert etx(1.0, 0.0) == float("inf")

    def test_ett_scales_with_rate(self):
        slow = ett(0.0, 0.0, 1500, RATE_1MBPS)
        fast = ett(0.0, 0.0, 1500, RATE_11MBPS)
        assert slow == pytest.approx(11 * fast, rel=1e-6)

    def test_ett_dead_link(self):
        assert ett(1.0, 0.0, 1500, RATE_11MBPS) == float("inf")

    @given(st.floats(min_value=0.0, max_value=0.99), st.floats(min_value=0.0, max_value=0.99))
    def test_etx_at_least_one(self, p_fwd, p_rev):
        assert etx(p_fwd, p_rev) >= 1.0


class TestDijkstra:
    def test_simple_chain(self):
        nodes = [0, 1, 2]
        weights = {(0, 1): 1.0, (1, 2): 1.0, (1, 0): 1.0, (2, 1): 1.0}
        result = dijkstra(nodes, weights, 0)
        assert result.path_to(2) == [0, 1, 2]
        assert result.distance[2] == pytest.approx(2.0)

    def test_prefers_lower_cost_path(self):
        nodes = [0, 1, 2]
        weights = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 5.0}
        assert dijkstra(nodes, weights, 0).path_to(2) == [0, 1, 2]
        weights[(0, 2)] = 1.5
        assert dijkstra(nodes, weights, 0).path_to(2) == [0, 2]

    def test_unreachable_destination(self):
        result = dijkstra([0, 1, 2], {(0, 1): 1.0}, 0)
        assert result.path_to(2) is None

    def test_infinite_weight_treated_as_absent(self):
        result = dijkstra([0, 1], {(0, 1): float("inf")}, 0)
        assert result.path_to(1) is None

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            dijkstra([0, 1], {(0, 1): -1.0}, 0)

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            dijkstra([0, 1], {(0, 1): 1.0}, 7)

    def test_agrees_with_networkx_on_random_graphs(self):
        import networkx as nx

        rng = np.random.default_rng(4)
        for _ in range(5):
            n = 8
            graph = nx.gnp_random_graph(n, 0.4, seed=int(rng.integers(1e6)))
            weights = {}
            for u, v in graph.edges:
                w = float(rng.uniform(0.5, 3.0))
                weights[(u, v)] = w
                weights[(v, u)] = w
                graph[u][v]["weight"] = w
            ours = dijkstra(list(range(n)), weights, 0)
            theirs = nx.single_source_dijkstra_path_length(graph, 0, weight="weight")
            for node, dist in theirs.items():
                assert ours.distance[node] == pytest.approx(dist)


class TestRouter:
    def test_route_flows(self):
        nodes = [0, 1, 2, 3]
        weights = {}
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            weights[(a, b)] = 1.0
            weights[(b, a)] = 1.0
        router = Router(nodes, weights)
        flows = router.route_flows([(0, 3), (1, 3)])
        assert flows[0].path == [0, 1, 2, 3]
        assert flows[1].path == [1, 2, 3]
        assert flows[0].hop_count == 3

    def test_route_flows_no_path_raises(self):
        router = Router([0, 1, 2], {(0, 1): 1.0, (1, 0): 1.0})
        with pytest.raises(ValueError):
            router.route_flows([(0, 2)])

    def test_update_weights_invalidates_cache(self):
        weights = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 10.0}
        router = Router([0, 1, 2], weights)
        assert router.shortest_path(0, 2) == [0, 1, 2]
        router.update_weights({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 0.5})
        assert router.shortest_path(0, 2) == [0, 2]


class TestRoutingMatrix:
    def test_matrix_shape_and_entries(self):
        flows = [
            FlowRoute(0, 0, 2, [0, 1, 2]),
            FlowRoute(1, 1, 2, [1, 2]),
        ]
        routing = build_routing_matrix(flows)
        assert routing.matrix.shape == (2, 2)
        idx_01 = routing.links.index((0, 1))
        idx_12 = routing.links.index((1, 2))
        assert routing.matrix[idx_01, 0] == 1.0
        assert routing.matrix[idx_01, 1] == 0.0
        assert routing.matrix[idx_12, 0] == 1.0
        assert routing.matrix[idx_12, 1] == 1.0

    def test_explicit_link_order_respected(self):
        flows = [FlowRoute(0, 0, 1, [0, 1])]
        routing = build_routing_matrix(flows, links=[(5, 6), (0, 1)])
        assert routing.matrix[0, 0] == 0.0
        assert routing.matrix[1, 0] == 1.0

    def test_missing_link_raises(self):
        flows = [FlowRoute(0, 0, 1, [0, 1])]
        with pytest.raises(ValueError):
            build_routing_matrix(flows, links=[(5, 6)])

    def test_flows_on_link(self):
        flows = [FlowRoute(0, 0, 2, [0, 1, 2]), FlowRoute(1, 1, 2, [1, 2])]
        routing = build_routing_matrix(flows)
        on_12 = routing.flows_on_link((1, 2))
        assert {f.flow_id for f in on_12} == {0, 1}


class TestPathLoss:
    def test_single_link(self):
        assert path_loss_probability({(0, 1): 0.2}, [0, 1]) == pytest.approx(0.2)

    def test_two_links_compose(self):
        losses = {(0, 1): 0.1, (1, 2): 0.2}
        assert path_loss_probability(losses, [0, 1, 2]) == pytest.approx(1 - 0.9 * 0.8)

    def test_unknown_links_lossless(self):
        assert path_loss_probability({}, [0, 1, 2]) == pytest.approx(0.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6))
    def test_bounded_and_monotone(self, losses):
        path = list(range(len(losses) + 1))
        mapping = {(i, i + 1): p for i, p in enumerate(losses)}
        total = path_loss_probability(mapping, path)
        assert 0.0 <= total <= 1.0
        assert total >= max(losses) - 1e-12
