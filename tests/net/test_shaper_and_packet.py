"""Tests for the token-bucket shaper and packet representation."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet, PacketKind
from repro.net.shaper import TokenBucketShaper


class TestTokenBucket:
    def test_initial_burst_allowed(self):
        shaper = TokenBucketShaper(rate_bps=1e6)
        assert shaper.try_consume(0.0, 1500)

    def test_rate_limits_sustained_traffic(self):
        shaper = TokenBucketShaper(rate_bps=1e6, bucket_bits=1500 * 8)
        now = 0.0
        sent_bits = 0
        while now < 1.0:
            if shaper.try_consume(now, 1500):
                sent_bits += 1500 * 8
            now += 0.001
        assert sent_bits <= 1.1e6 + 1500 * 8

    def test_time_until_available(self):
        shaper = TokenBucketShaper(rate_bps=1e6, bucket_bits=1500 * 8)
        assert shaper.try_consume(0.0, 1500)
        wait = shaper.time_until_available(0.0, 1500)
        assert wait == pytest.approx(1500 * 8 / 1e6, rel=0.05)

    def test_infinite_rate_never_blocks(self):
        shaper = TokenBucketShaper(rate_bps=float("inf"))
        for step in range(100):
            assert shaper.try_consume(step * 1e-6, 1500)
            assert shaper.time_until_available(step * 1e-6, 1500) == 0.0

    def test_zero_rate_blocks_forever(self):
        shaper = TokenBucketShaper(rate_bps=0.0, bucket_bits=100)
        assert not shaper.try_consume(0.0, 1500)
        assert shaper.time_until_available(0.0, 1500) == float("inf")

    def test_set_rate(self):
        shaper = TokenBucketShaper(rate_bps=1e6, bucket_bits=8000)
        shaper.set_rate(2e6)
        assert shaper.rate_bps == 2e6

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucketShaper(rate_bps=-1.0)
        shaper = TokenBucketShaper(rate_bps=1e6)
        with pytest.raises(ValueError):
            shaper.set_rate(-5.0)

    @given(
        st.floats(min_value=1e4, max_value=1e7),
        st.integers(min_value=100, max_value=1500),
    )
    def test_long_run_rate_respected(self, rate, packet_bytes):
        """Over a long horizon the granted rate never exceeds the configured one."""
        shaper = TokenBucketShaper(rate_bps=rate, bucket_bits=2 * packet_bytes * 8)
        granted_bits = 0.0
        t = 0.0
        step = packet_bytes * 8 / rate / 3.0
        horizon = 2.0
        while t < horizon:
            if shaper.try_consume(t, packet_bytes):
                granted_bits += packet_bytes * 8
            t += step
        assert granted_bits <= rate * horizon + shaper.bucket_bits + packet_bytes * 8


class TestPacket:
    def test_packet_ids_unique(self):
        a = Packet(PacketKind.UDP, 0, 1, 0, 100, 0.0)
        b = Packet(PacketKind.UDP, 0, 1, 0, 100, 0.0)
        assert a.packet_id != b.packet_id

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.UDP, 0, 1, 0, -5, 0.0)

    def test_meta_is_per_packet(self):
        a = Packet(PacketKind.TCP_DATA, 0, 1, 0, 100, 0.0)
        b = Packet(PacketKind.TCP_DATA, 0, 1, 0, 100, 0.0)
        a.meta["tcp_seq"] = 1
        assert "tcp_seq" not in b.meta
