"""Tests for the Section 4.4 error analysis and the alpha-fair utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.lir_error import (
    PairSample,
    best_threshold,
    expected_errors,
    pair_error,
    synthetic_pair_from_lir,
    threshold_sweep,
)
from repro.core.utility import MAX_THROUGHPUT, PROPORTIONAL_FAIR, AlphaFairUtility


class TestPairSample:
    def test_lir(self):
        sample = PairSample(1.0, 1.0, 0.6, 0.6)
        assert sample.lir == pytest.approx(0.6)

    def test_synthetic_pair_realises_lir(self):
        for lir in (0.2, 0.5, 0.8, 1.0):
            sample = synthetic_pair_from_lir(lir)
            assert sample.lir == pytest.approx(lir, abs=1e-9)

    def test_synthetic_pair_clamps_to_capacities(self):
        sample = synthetic_pair_from_lir(1.0, c11=1.0, c22=1.0)
        assert sample.c31 <= 1.0 and sample.c32 <= 1.0

    def test_synthetic_pair_split_validation(self):
        with pytest.raises(ValueError):
            synthetic_pair_from_lir(0.5, split=1.5)


class TestPairError:
    def test_interfering_pair_has_only_fn(self):
        sample = PairSample(1.0, 1.0, 0.8, 0.8)  # LIR 0.8 < 0.95
        fp, fn = pair_error(sample, threshold=0.95)
        assert fp == 0.0
        assert fn > 0.0

    def test_non_interfering_pair_has_only_fp(self):
        sample = PairSample(1.0, 1.0, 0.97, 0.97)  # LIR 0.97 >= 0.95
        fp, fn = pair_error(sample, threshold=0.95)
        assert fn == 0.0
        assert fp >= 0.0

    def test_perfect_time_sharing_has_no_error(self):
        sample = PairSample(1.0, 1.0, 0.5, 0.5)
        fp, fn = pair_error(sample, threshold=0.95)
        assert fp == 0.0 and fn == pytest.approx(0.0, abs=1e-9)

    def test_full_independence_classified_independent_no_error(self):
        sample = PairSample(1.0, 1.0, 1.0, 1.0)
        fp, fn = pair_error(sample, threshold=0.95)
        assert fp == pytest.approx(0.0, abs=1e-9)
        assert fn == 0.0


class TestExpectedErrors:
    def _samples_from_lir_distribution(self):
        # A distribution shaped like Figure 3: a cluster of strongly
        # interfering pairs and a cluster of nearly independent pairs.
        rng = np.random.default_rng(0)
        lirs = np.concatenate(
            [rng.uniform(0.45, 0.7, size=60), rng.uniform(0.96, 1.0, size=50), rng.uniform(0.8, 0.95, size=20)]
        )
        return [synthetic_pair_from_lir(float(lir)) for lir in lirs]

    def test_expected_errors_at_paper_threshold(self):
        samples = self._samples_from_lir_distribution()
        result = expected_errors(samples, threshold=0.95)
        # Paper reports ~2% FP and ~13% FN for its LIR distribution: ours
        # only needs to be in a sensible band.
        assert result.expected_false_positive < 0.10
        assert 0.0 < result.expected_false_negative < 0.40

    def test_threshold_sweep_monotone_fn(self):
        """Raising the threshold can only add pairs to the interfering class,
        so the expected FN error is non-decreasing in the threshold."""
        samples = self._samples_from_lir_distribution()
        sweep = threshold_sweep(samples, [0.7, 0.8, 0.9, 0.95, 0.99])
        fns = [entry.expected_false_negative for entry in sweep]
        assert all(b >= a - 1e-12 for a, b in zip(fns, fns[1:]))

    def test_threshold_sweep_monotone_fp(self):
        samples = self._samples_from_lir_distribution()
        sweep = threshold_sweep(samples, [0.7, 0.8, 0.9, 0.95, 0.99])
        fps = [entry.expected_false_positive for entry in sweep]
        assert all(b <= a + 1e-12 for a, b in zip(fps, fps[1:]))

    def test_best_threshold_returned(self):
        samples = self._samples_from_lir_distribution()
        best = best_threshold(samples, np.linspace(0.5, 0.99, 25))
        sweep = threshold_sweep(samples, np.linspace(0.5, 0.99, 25))
        assert best.combined == pytest.approx(min(e.combined for e in sweep))

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            expected_errors([], 0.95)


class TestUtility:
    def test_max_throughput_is_alpha_zero(self):
        assert MAX_THROUGHPUT.alpha == 0.0
        assert MAX_THROUGHPUT.is_throughput_maximising

    def test_proportional_fair_is_log(self):
        assert PROPORTIONAL_FAIR.alpha == 1.0
        value = PROPORTIONAL_FAIR.value(np.array([np.e, np.e]))
        assert value == pytest.approx(2.0)

    def test_alpha_zero_is_sum(self):
        assert MAX_THROUGHPUT.value(np.array([1.0, 2.0, 3.0])) == pytest.approx(6.0)

    def test_gradient(self):
        utility = AlphaFairUtility(alpha=2.0)
        grad = utility.gradient(np.array([1.0, 2.0]))
        assert grad[0] == pytest.approx(1.0)
        assert grad[1] == pytest.approx(0.25)

    def test_rate_floor_keeps_log_finite(self):
        assert np.isfinite(PROPORTIONAL_FAIR.value(np.array([0.0, 1.0])))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            AlphaFairUtility(alpha=-1.0)

    def test_describe(self):
        assert "throughput" in AlphaFairUtility(alpha=0.0).describe()
        assert "proportional" in AlphaFairUtility(alpha=1.0).describe()

    @given(st.floats(min_value=0.0, max_value=4.0))
    def test_utility_monotone_in_rate(self, alpha):
        utility = AlphaFairUtility(alpha=alpha)
        low = utility.value(np.array([1.0]))
        high = utility.value(np.array([2.0]))
        assert high > low

    @given(st.floats(min_value=0.1, max_value=4.0))
    def test_fairness_preference_property(self, alpha):
        """For alpha > 0, an equal split beats an extreme split of the same total."""
        utility = AlphaFairUtility(alpha=alpha)
        equal = utility.value(np.array([1.0, 1.0]))
        skewed = utility.value(np.array([1.9, 0.1]))
        assert equal > skewed
