"""Tests for LIR, interference maps, clique enumeration and conflict graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cliques import (
    adjacency_from_edges,
    complement_graph,
    maximal_cliques,
    maximal_independent_sets,
)
from repro.core.conflict_graph import ConflictGraph
from repro.core.interference import (
    BinaryLirClassifier,
    PairwiseInterferenceMap,
    connectivity_from_loss_rates,
    link_interference_ratio,
)


class TestLir:
    def test_no_interference(self):
        assert link_interference_ratio(1.0, 1.0, 1.0, 1.0) == pytest.approx(1.0)

    def test_perfect_time_sharing(self):
        assert link_interference_ratio(1.0, 1.0, 0.5, 0.5) == pytest.approx(0.5)

    def test_total_starvation(self):
        assert link_interference_ratio(1.0, 1.0, 0.0, 1.0) == pytest.approx(0.5)

    def test_zero_capacity_pair(self):
        assert link_interference_ratio(0.0, 0.0, 0.0, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            link_interference_ratio(-1.0, 1.0, 0.5, 0.5)

    def test_classifier_threshold(self):
        classifier = BinaryLirClassifier(threshold=0.95)
        assert classifier.interferes(0.7)
        assert not classifier.interferes(0.97)

    def test_classifier_validation(self):
        with pytest.raises(ValueError):
            BinaryLirClassifier(threshold=0.0)


class TestInterferenceMap:
    def test_add_and_query_conflicts(self):
        links = [(0, 1), (2, 3), (4, 5)]
        imap = PairwiseInterferenceMap(links)
        imap.add_conflict((0, 1), (2, 3))
        assert imap.interferes((0, 1), (2, 3))
        assert imap.interferes((2, 3), (0, 1))
        assert not imap.interferes((0, 1), (4, 5))
        assert imap.conflicts_of((0, 1)) == [(2, 3)]

    def test_self_conflict_ignored(self):
        imap = PairwiseInterferenceMap([(0, 1)])
        imap.add_conflict((0, 1), (0, 1))
        assert not imap.interferes((0, 1), (0, 1))

    def test_unknown_link_rejected(self):
        imap = PairwiseInterferenceMap([(0, 1)])
        with pytest.raises(KeyError):
            imap.add_conflict((0, 1), (8, 9))

    def test_duplicate_links_rejected(self):
        with pytest.raises(ValueError):
            PairwiseInterferenceMap([(0, 1), (0, 1)])

    def test_from_lir_measurements(self):
        links = [(0, 1), (2, 3), (4, 5)]
        lirs = {((0, 1), (2, 3)): 0.5, ((0, 1), (4, 5)): 0.99}
        imap = PairwiseInterferenceMap.from_lir_measurements(lirs, links)
        assert imap.interferes((0, 1), (2, 3))
        assert not imap.interferes((0, 1), (4, 5))

    def test_two_hop_shared_endpoint(self):
        links = [(0, 1), (1, 2), (3, 4)]
        imap = PairwiseInterferenceMap.from_two_hop(links, neighbors={})
        assert imap.interferes((0, 1), (1, 2))
        assert not imap.interferes((0, 1), (3, 4))

    def test_two_hop_neighbourhood(self):
        # Links (0,1) and (2,3) don't share endpoints, but node 1 and node 2
        # are neighbours, so the two-hop rule marks them as conflicting.
        links = [(0, 1), (2, 3)]
        imap = PairwiseInterferenceMap.from_two_hop(links, neighbors={1: {2}, 2: {1}})
        assert imap.interferes((0, 1), (2, 3))

    def test_two_hop_far_links_do_not_conflict(self):
        links = [(0, 1), (4, 5)]
        neighbors = {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
        imap = PairwiseInterferenceMap.from_two_hop(links, neighbors)
        assert not imap.interferes((0, 1), (4, 5))

    def test_connectivity_from_loss_rates(self):
        loss = {(0, 1): 0.1, (1, 0): 0.2, (0, 2): 0.95}
        neighbors = connectivity_from_loss_rates(loss, delivery_threshold=0.5)
        assert 1 in neighbors[0] and 0 in neighbors[1]
        assert 2 not in neighbors.get(0, set())


class TestCliques:
    def test_triangle_cliques(self):
        adjacency = adjacency_from_edges([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
        cliques = maximal_cliques(adjacency)
        assert cliques == [frozenset({1, 2, 3})]

    def test_path_graph_cliques(self):
        adjacency = adjacency_from_edges([1, 2, 3], [(1, 2), (2, 3)])
        assert set(maximal_cliques(adjacency)) == {frozenset({1, 2}), frozenset({2, 3})}

    def test_empty_graph(self):
        assert maximal_cliques({}) == []

    def test_isolated_vertices_are_their_own_cliques(self):
        adjacency = {1: set(), 2: set()}
        assert set(maximal_cliques(adjacency)) == {frozenset({1}), frozenset({2})}

    def test_independent_sets_of_path(self):
        adjacency = adjacency_from_edges([1, 2, 3], [(1, 2), (2, 3)])
        assert set(maximal_independent_sets(adjacency)) == {
            frozenset({1, 3}),
            frozenset({2}),
        }

    def test_complement_graph(self):
        adjacency = adjacency_from_edges([1, 2, 3], [(1, 2)])
        comp = complement_graph(adjacency)
        assert comp[1] == {3}
        assert comp[3] == {1, 2}

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ValueError):
            maximal_cliques({1: {2}, 2: set()})

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            maximal_cliques({1: {1}})

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1), st.floats(min_value=0.1, max_value=0.7))
    def test_matches_networkx_on_random_graphs(self, seed, density):
        graph = nx.gnp_random_graph(9, density, seed=seed)
        adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes}
        ours = set(maximal_cliques(adjacency))
        theirs = {frozenset(c) for c in nx.find_cliques(graph)}
        assert ours == theirs

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_independent_sets_are_independent_and_maximal(self, seed):
        graph = nx.gnp_random_graph(8, 0.4, seed=seed)
        adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes}
        for mis in maximal_independent_sets(adjacency):
            # Independence: no edge inside the set.
            for a in mis:
                assert not (adjacency[a] & mis)
            # Maximality: every vertex outside has a neighbour inside.
            for v in set(adjacency) - mis:
                assert adjacency[v] & mis


class TestConflictGraph:
    def _simple_graph(self):
        links = [(0, 1), (2, 3), (4, 5)]
        imap = PairwiseInterferenceMap(links)
        imap.add_conflict((0, 1), (2, 3))
        imap.add_conflict((2, 3), (4, 5))
        return ConflictGraph.from_interference_map(imap)

    def test_edges_and_degree(self):
        graph = self._simple_graph()
        assert graph.num_edges == 2
        assert graph.degree((2, 3)) == 2
        assert graph.interferes((0, 1), (2, 3))
        assert not graph.interferes((0, 1), (4, 5))

    def test_independent_sets(self):
        graph = self._simple_graph()
        sets = set(graph.independent_sets())
        assert frozenset({(0, 1), (4, 5)}) in sets
        assert frozenset({(2, 3)}) in sets

    def test_networkx_export(self):
        graph = self._simple_graph()
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == 3
        assert exported.number_of_edges() == 2

    def test_adjacency_must_cover_links(self):
        with pytest.raises(ValueError):
            ConflictGraph(links=[(0, 1)], adjacency={})
