"""Tests for the utility-maximising rate optimizer (Section 6.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conflict_graph import ConflictGraph
from repro.core.extreme_points import FeasibilityRegion
from repro.core.interference import PairwiseInterferenceMap
from repro.core.optimizer import RateOptimizer
from repro.core.utility import MAX_THROUGHPUT, PROPORTIONAL_FAIR, AlphaFairUtility
from repro.net.routing import FlowRoute, build_routing_matrix


def _region(links, capacities, conflicts):
    imap = PairwiseInterferenceMap(links)
    for a, b in conflicts:
        imap.add_conflict(a, b)
    graph = ConflictGraph.from_interference_map(imap)
    return FeasibilityRegion.from_capacities_and_conflicts(capacities, graph)


def _two_single_hop_flows(c1=1e6, c2=1e6, interfering=True):
    links = [(0, 1), (2, 3)]
    region = _region(
        links,
        {links[0]: c1, links[1]: c2},
        [(links[0], links[1])] if interfering else [],
    )
    flows = [FlowRoute(0, 0, 1, [0, 1]), FlowRoute(1, 2, 3, [2, 3])]
    routing = build_routing_matrix(flows, links=region.links)
    return region, routing


class TestLinearObjectives:
    def test_max_throughput_uses_full_capacity(self):
        region, routing = _two_single_hop_flows(interfering=True)
        result = RateOptimizer(region, routing, MAX_THROUGHPUT).solve()
        assert result.success
        assert result.aggregate_rate == pytest.approx(1e6, rel=1e-6)

    def test_max_throughput_independent_links(self):
        region, routing = _two_single_hop_flows(interfering=False)
        result = RateOptimizer(region, routing, MAX_THROUGHPUT).solve()
        assert result.aggregate_rate == pytest.approx(2e6, rel=1e-6)

    def test_max_throughput_prefers_high_capacity_link(self):
        region, routing = _two_single_hop_flows(c1=2e6, c2=1e6, interfering=True)
        result = RateOptimizer(region, routing, MAX_THROUGHPUT).solve()
        assert result.flow_rates[0] == pytest.approx(2e6, rel=1e-4)
        assert result.flow_rates[1] == pytest.approx(0.0, abs=2.0)

    def test_max_min_equalises_rates(self):
        region, routing = _two_single_hop_flows(c1=2e6, c2=1e6, interfering=True)
        result = RateOptimizer(region, routing, MAX_THROUGHPUT).solve_max_min()
        assert result.flow_rates[0] == pytest.approx(result.flow_rates[1], rel=1e-5)
        assert result.flow_rates[0] > 0.5e6

    def test_link_rates_consistent_with_routing(self):
        region, routing = _two_single_hop_flows()
        result = RateOptimizer(region, routing, MAX_THROUGHPUT).solve()
        np.testing.assert_allclose(result.link_rates, routing.matrix @ result.flow_rates)


class TestProportionalFairness:
    def test_equal_split_for_symmetric_flows(self):
        region, routing = _two_single_hop_flows(interfering=True)
        result = RateOptimizer(region, routing, PROPORTIONAL_FAIR).solve()
        assert result.success
        assert result.flow_rates[0] == pytest.approx(0.5e6, rel=0.01)
        assert result.flow_rates[1] == pytest.approx(0.5e6, rel=0.01)

    def test_proportional_fair_on_chain(self):
        """The classic chain result: the 2-link flow gets half of what the
        1-link flow gets under proportional fairness."""
        links = [(0, 1), (1, 2)]
        region = _region(
            links, {links[0]: 1e6, links[1]: 1e6}, [(links[0], links[1])]
        )
        flows = [FlowRoute(0, 0, 2, [0, 1, 2]), FlowRoute(1, 1, 2, [1, 2])]
        routing = build_routing_matrix(flows, links=region.links)
        result = RateOptimizer(region, routing, PROPORTIONAL_FAIR).solve()
        # y_long = C/4, y_short = C/2 (2*y_long + y_short = C).
        assert result.flow_rates[0] == pytest.approx(0.25e6, rel=0.05)
        assert result.flow_rates[1] == pytest.approx(0.5e6, rel=0.05)

    def test_no_flow_starves_under_proportional_fairness(self):
        region, routing = _two_single_hop_flows(c1=5e6, c2=0.5e6, interfering=True)
        result = RateOptimizer(region, routing, PROPORTIONAL_FAIR).solve()
        assert result.flow_rates.min() > 0.05e6

    def test_rates_stay_feasible(self):
        region, routing = _two_single_hop_flows(c1=3e6, c2=1e6, interfering=True)
        result = RateOptimizer(region, routing, PROPORTIONAL_FAIR).solve()
        assert region.contains(result.link_rates * 0.99)

    def test_higher_alpha_is_more_fair(self):
        links = [(0, 1), (1, 2)]
        region = _region(links, {links[0]: 1e6, links[1]: 1e6}, [(links[0], links[1])])
        flows = [FlowRoute(0, 0, 2, [0, 1, 2]), FlowRoute(1, 1, 2, [1, 2])]
        routing = build_routing_matrix(flows, links=region.links)
        ratios = []
        for alpha in (1.0, 2.0, 4.0):
            result = RateOptimizer(region, routing, AlphaFairUtility(alpha=alpha)).solve()
            ratios.append(result.flow_rates[0] / result.flow_rates[1])
        assert ratios[0] < ratios[1] < ratios[2] <= 1.05

    def test_alpha_weights_sum_to_one(self):
        region, routing = _two_single_hop_flows()
        result = RateOptimizer(region, routing, PROPORTIONAL_FAIR).solve()
        assert result.alpha.sum() == pytest.approx(1.0, abs=1e-4)


class TestValidation:
    def test_mismatched_links_rejected(self):
        region, _ = _two_single_hop_flows()
        flows = [FlowRoute(0, 0, 1, [0, 1])]
        routing = build_routing_matrix(flows)  # only one link
        with pytest.raises(ValueError):
            RateOptimizer(region, routing, MAX_THROUGHPUT)

    def test_zero_capacity_region_rejected(self):
        links = [(0, 1)]
        region = _region(links, {links[0]: 0.0}, [])
        flows = [FlowRoute(0, 0, 1, [0, 1])]
        routing = build_routing_matrix(flows, links=region.links)
        with pytest.raises(ValueError):
            RateOptimizer(region, routing, MAX_THROUGHPUT)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=0.2e6, max_value=8e6),
        st.floats(min_value=0.2e6, max_value=8e6),
        st.booleans(),
    )
    def test_solutions_always_feasible_property(self, c1, c2, interfering):
        region, routing = _two_single_hop_flows(c1=c1, c2=c2, interfering=interfering)
        for utility in (MAX_THROUGHPUT, PROPORTIONAL_FAIR):
            result = RateOptimizer(region, routing, utility).solve()
            assert result.success
            assert np.all(result.flow_rates >= -1e-6)
            assert region.contains(result.link_rates * 0.995)
