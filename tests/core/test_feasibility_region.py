"""Tests for extreme points, the feasibility region and two-link geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conflict_graph import ConflictGraph
from repro.core.extreme_points import (
    FeasibilityRegion,
    primary_extreme_points,
    secondary_extreme_points,
)
from repro.core.feasibility import TwoLinkRegions
from repro.core.interference import PairwiseInterferenceMap


def _two_link_region(interfering: bool, c1=1.0, c2=2.0) -> FeasibilityRegion:
    links = [(0, 1), (2, 3)]
    capacities = {links[0]: c1, links[1]: c2}
    imap = PairwiseInterferenceMap(links)
    if interfering:
        imap.add_conflict(links[0], links[1])
    graph = ConflictGraph.from_interference_map(imap)
    return FeasibilityRegion.from_capacities_and_conflicts(capacities, graph)


class TestExtremePoints:
    def test_primary_points_are_diagonal(self):
        links = [(0, 1), (2, 3)]
        points = primary_extreme_points({links[0]: 3.0, links[1]: 5.0}, links)
        assert points.shape == (2, 2)
        assert points[0, 0] == 3.0 and points[0, 1] == 0.0
        assert points[1, 1] == 5.0 and points[1, 0] == 0.0

    def test_missing_capacity_raises(self):
        with pytest.raises(KeyError):
            primary_extreme_points({(0, 1): 1.0}, [(0, 1), (2, 3)])

    def test_secondary_points_interfering_pair(self):
        region = _two_link_region(interfering=True)
        # Maximal independent sets are the two singletons: the secondary
        # points coincide with the primary ones.
        assert region.num_extreme_points == 4

    def test_secondary_points_independent_pair(self):
        links = [(0, 1), (2, 3)]
        imap = PairwiseInterferenceMap(links)
        graph = ConflictGraph.from_interference_map(imap)
        secondary = secondary_extreme_points({links[0]: 1.0, links[1]: 2.0}, graph)
        # One maximal independent set containing both links.
        assert secondary.shape == (1, 2)
        assert list(secondary[0]) == [1.0, 2.0]

    def test_eq4_replaces_unit_entries_with_capacities(self):
        links = [(0, 1), (2, 3), (4, 5)]
        caps = {links[0]: 10.0, links[1]: 20.0, links[2]: 30.0}
        imap = PairwiseInterferenceMap(links)
        imap.add_conflict(links[0], links[1])
        graph = ConflictGraph.from_interference_map(imap)
        secondary = secondary_extreme_points(caps, graph)
        rows = {tuple(row) for row in secondary}
        assert (10.0, 0.0, 30.0) in rows
        assert (0.0, 20.0, 30.0) in rows


class TestFeasibilityRegion:
    def test_time_sharing_membership(self):
        region = _two_link_region(interfering=True, c1=1.0, c2=1.0)
        assert region.contains([0.5, 0.49])
        assert region.contains([1.0, 0.0])
        assert not region.contains([0.7, 0.7])

    def test_independent_membership(self):
        region = _two_link_region(interfering=False, c1=1.0, c2=1.0)
        assert region.contains([0.99, 0.99])
        assert not region.contains([1.2, 0.1])

    def test_negative_rates_not_feasible(self):
        region = _two_link_region(interfering=True)
        assert not region.contains([-0.5, 0.1])

    def test_dimension_mismatch_raises(self):
        region = _two_link_region(interfering=True)
        with pytest.raises(ValueError):
            region.contains([0.1])

    def test_max_scaling_interfering(self):
        region = _two_link_region(interfering=True, c1=1.0, c2=1.0)
        theta = region.max_scaling([1.0, 1.0])
        assert theta == pytest.approx(0.5, rel=1e-6)

    def test_max_scaling_independent(self):
        region = _two_link_region(interfering=False, c1=1.0, c2=2.0)
        theta = region.max_scaling([1.0, 1.0])
        assert theta == pytest.approx(1.0, rel=1e-6)

    def test_max_scaling_zero_direction(self):
        region = _two_link_region(interfering=True)
        assert region.max_scaling([0.0, 0.0]) == 0.0

    def test_max_single_link_rate(self):
        region = _two_link_region(interfering=True, c1=1.0, c2=2.0)
        assert region.max_single_link_rate((2, 3)) == pytest.approx(2.0)

    def test_boundary_point_on_scaled_direction_is_feasible(self):
        region = _two_link_region(interfering=True, c1=2.0, c2=3.0)
        direction = np.array([1.0, 1.0])
        theta = region.max_scaling(direction)
        assert region.contains(direction * theta * 0.999)
        assert not region.contains(direction * theta * 1.05)

    def test_validation_of_extreme_points(self):
        with pytest.raises(ValueError):
            FeasibilityRegion(links=[(0, 1)], extreme_points=np.array([[-1.0]]))
        with pytest.raises(ValueError):
            FeasibilityRegion(links=[(0, 1)], extreme_points=np.zeros((0, 1)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_convexity_property(self, c1, c2, w1, w2):
        """Any convex combination of extreme points is feasible."""
        region = _two_link_region(interfering=True, c1=c1, c2=c2)
        points = region.extreme_points
        weights = np.zeros(region.num_extreme_points)
        weights[0] = w1
        weights[1] = w2
        if weights.sum() == 0:
            weights[0] = 1.0
        weights = weights / weights.sum()
        combo = weights @ points
        assert region.contains(combo * 0.999)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.05, max_value=5.0),
        st.floats(min_value=0.05, max_value=5.0),
        st.floats(min_value=0.0, max_value=1.2),
    )
    def test_scaling_consistency_property(self, c1, c2, fraction):
        """Points strictly inside the max-scaling radius are feasible."""
        region = _two_link_region(interfering=True, c1=c1, c2=c2)
        direction = np.array([1.0, 1.0])
        theta = region.max_scaling(direction)
        point = direction * theta * fraction
        if fraction <= 0.99:
            assert region.contains(point)
        if fraction >= 1.05:
            assert not region.contains(point)


class TestTwoLinkRegions:
    def test_time_sharing_area(self):
        regions = TwoLinkRegions(c11=2.0, c22=4.0)
        assert regions.time_sharing_area == pytest.approx(4.0)
        assert regions.independent_area == pytest.approx(8.0)

    def test_membership_tests(self):
        regions = TwoLinkRegions(c11=1.0, c22=1.0, c31=0.8, c32=0.8)
        assert regions.in_time_sharing(0.5, 0.5)
        assert not regions.in_time_sharing(0.8, 0.8)
        assert regions.in_independent(0.8, 0.8)
        assert regions.in_three_point(0.75, 0.75)
        assert not regions.in_three_point(0.95, 0.95)

    def test_three_point_requires_secondary(self):
        regions = TwoLinkRegions(c11=1.0, c22=1.0)
        with pytest.raises(ValueError):
            regions.in_three_point(0.1, 0.1)

    def test_three_point_degenerates_to_time_sharing(self):
        regions = TwoLinkRegions(c11=1.0, c22=1.0, c31=0.3, c32=0.3)
        assert regions.three_point_area == pytest.approx(regions.time_sharing_area)
        assert regions.capture_gain_area == 0.0

    def test_capture_expands_region(self):
        regions = TwoLinkRegions(c11=1.0, c22=1.0, c31=0.9, c32=0.9)
        assert regions.three_point_area > regions.time_sharing_area
        assert regions.false_negative_error() > 0.3

    def test_full_capture_errors(self):
        regions = TwoLinkRegions(c11=1.0, c22=1.0, c31=1.0, c32=1.0)
        # Three-point region equals the independent rectangle minus nothing:
        # the FN error of choosing time sharing is 1/2 over 1 -> ~0.5 area
        # missing relative to the hull; FP error of independent region is 0.
        assert regions.false_positive_error() == pytest.approx(0.0, abs=1e-9)
        assert regions.false_negative_error() > 0.0

    def test_lir_property(self):
        regions = TwoLinkRegions(c11=1.0, c22=1.0, c31=0.5, c32=0.5)
        assert regions.lir == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TwoLinkRegions(c11=0.0, c22=1.0)
        with pytest.raises(ValueError):
            TwoLinkRegions(c11=1.0, c22=1.0, c31=0.5, c32=None)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_area_and_error_invariants(self, c11, c22, f1, f2):
        regions = TwoLinkRegions(c11=c11, c22=c22, c31=c11 * f1, c32=c22 * f2)
        assert regions.time_sharing_area <= regions.three_point_area + 1e-9
        assert regions.three_point_area <= regions.independent_area + 1e-9
        assert 0.0 <= regions.false_negative_error() <= 1.0
        assert regions.false_positive_error() >= 0.0
