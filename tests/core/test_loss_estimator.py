"""Tests for the channel loss rate estimator (Section 5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.loss_estimator import (
    ChannelLossEstimate,
    estimate_channel_loss_rate,
    sliding_min_loss_curve,
)


def _uniform_series(rng, n, p):
    return (rng.random(n) < p).astype(int)


class TestSlidingMinCurve:
    def test_all_received(self):
        sizes, curve = sliding_min_loss_curve(np.zeros(100, dtype=int))
        assert np.all(curve == 0.0)
        assert sizes[0] == 10 and sizes[-1] == 100

    def test_all_lost(self):
        sizes, curve = sliding_min_loss_curve(np.ones(100, dtype=int))
        assert np.all(curve == 1.0)

    def test_curve_rises_toward_measured_rate(self):
        """The min-loss curve starts low (collision-free stretches exist)
        and ends exactly at the overall measured loss rate."""
        rng = np.random.default_rng(1)
        series = _uniform_series(rng, 400, 0.1)
        series[100:150] = 1
        _, curve = sliding_min_loss_curve(series)
        assert curve[0] <= curve[-1]
        assert curve[-1] == pytest.approx(series.mean())

    def test_final_value_is_overall_loss_rate(self):
        rng = np.random.default_rng(2)
        series = _uniform_series(rng, 300, 0.2)
        _, curve = sliding_min_loss_curve(series)
        assert curve[-1] == pytest.approx(series.mean())

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            sliding_min_loss_curve(np.array([]))

    def test_window_larger_than_series_is_clamped(self):
        sizes, curve = sliding_min_loss_curve(np.zeros(5, dtype=int), min_window=10)
        assert sizes[0] == 5

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=15, max_size=200))
    def test_curve_bounded_property(self, bits):
        series = np.array(bits)
        sizes, curve = sliding_min_loss_curve(series)
        assert np.all((curve >= 0.0) & (curve <= 1.0))
        assert curve[-1] == pytest.approx(series.mean())
        # The curve always contains the full-window point, so its minimum
        # can never exceed the measured loss rate.
        assert curve.min() <= series.mean() + 1e-12


class TestEstimator:
    def test_clean_series(self):
        estimate = estimate_channel_loss_rate(np.zeros(500, dtype=int))
        assert estimate.channel_loss_rate == 0.0
        assert estimate.case == 1

    def test_uniform_losses_estimated_close_to_truth(self):
        rng = np.random.default_rng(3)
        errors = []
        for p in (0.05, 0.1, 0.2, 0.4):
            series = _uniform_series(rng, 1280, p)
            estimate = estimate_channel_loss_rate(series)
            errors.append(abs(estimate.channel_loss_rate - p))
        assert np.mean(errors) < 0.06

    def test_collision_burst_filtered_out(self):
        """A bursty interference episode must not inflate the channel estimate."""
        rng = np.random.default_rng(4)
        p_channel = 0.05
        series = _uniform_series(rng, 1280, p_channel)
        series[200:500] = (rng.random(300) < 0.7).astype(int)
        estimate = estimate_channel_loss_rate(series)
        assert estimate.measured_loss_rate > 0.15
        assert estimate.channel_loss_rate < 0.5 * estimate.measured_loss_rate
        assert estimate.channel_loss_rate <= p_channel + 0.05

    def test_collision_only_scenario(self):
        """Pure collision losses on a clean channel: estimate near zero."""
        rng = np.random.default_rng(5)
        series = np.zeros(1280, dtype=int)
        series[600:900] = (rng.random(300) < 0.5).astype(int)
        estimate = estimate_channel_loss_rate(series)
        assert estimate.channel_loss_rate < 0.03

    def test_estimate_never_exceeds_measured(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            series = _uniform_series(rng, 600, rng.uniform(0.0, 0.6))
            estimate = estimate_channel_loss_rate(series)
            assert estimate.channel_loss_rate <= estimate.measured_loss_rate + 1e-12

    def test_returns_curve_and_window(self):
        rng = np.random.default_rng(7)
        series = _uniform_series(rng, 400, 0.1)
        estimate = estimate_channel_loss_rate(series)
        assert isinstance(estimate, ChannelLossEstimate)
        assert estimate.window_sizes.shape == estimate.min_loss_curve.shape
        assert estimate.window_sizes[0] <= estimate.selected_window <= estimate.window_sizes[-1]

    def test_short_series_supported(self):
        estimate = estimate_channel_loss_rate(np.array([0, 1, 0, 0, 1, 0, 0, 0]))
        assert 0.0 <= estimate.channel_loss_rate <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.floats(min_value=0.0, max_value=0.8))
    def test_estimate_bounded_property(self, seed, p):
        rng = np.random.default_rng(seed)
        series = _uniform_series(rng, 320, p)
        estimate = estimate_channel_loss_rate(series)
        assert 0.0 <= estimate.channel_loss_rate <= estimate.measured_loss_rate + 1e-12
        assert estimate.case in (1, 2)
