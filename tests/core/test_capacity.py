"""Tests for the Eq. (6) capacity representation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.capacity import CapacityModel, combine_data_ack_losses
from repro.mac.nominal import nominal_throughput_bps
from repro.phy.radio import RATE_1MBPS, RATE_11MBPS


class TestCapacityModel:
    def test_zero_loss_equals_nominal(self):
        for rate in (RATE_1MBPS, RATE_11MBPS):
            model = CapacityModel(payload_bytes=1470, rate=rate)
            assert model.max_udp_throughput_bps(0.0) == pytest.approx(
                nominal_throughput_bps(1470, rate)
            )

    def test_throughput_decreases_with_loss(self):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        previous = model.max_udp_throughput_bps(0.0)
        for loss in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8):
            current = model.max_udp_throughput_bps(loss)
            assert current < previous
            previous = current

    def test_total_loss_gives_zero(self):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        assert model.max_udp_throughput_bps(1.0) == 0.0

    def test_etx(self):
        model = CapacityModel()
        assert model.expected_transmissions(0.0) == pytest.approx(1.0)
        assert model.expected_transmissions(0.5) == pytest.approx(2.0)
        assert model.expected_transmissions(1.0) == float("inf")

    def test_idle_time_zero_without_retransmissions(self):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        assert model.idle_time_s(0.0) == 0.0
        # Below 50% loss, ETX < 2 so no completed retransmission stage yet.
        assert model.idle_time_s(0.3) == 0.0

    def test_idle_time_grows_with_loss(self):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        assert model.idle_time_s(0.85) > model.idle_time_s(0.6) > 0.0

    def test_invalid_loss_rejected(self):
        model = CapacityModel()
        with pytest.raises(ValueError):
            model.max_udp_throughput_bps(-0.1)
        with pytest.raises(ValueError):
            model.max_udp_throughput_bps(1.2)

    def test_1mbps_capacity_lower_than_11mbps(self):
        slow = CapacityModel(payload_bytes=1470, rate=RATE_1MBPS)
        fast = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        for loss in (0.0, 0.2, 0.5):
            assert slow.max_udp_throughput_bps(loss) < fast.max_udp_throughput_bps(loss)

    def test_inversion_round_trip(self):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        for loss in (0.0, 0.1, 0.3, 0.6):
            throughput = model.max_udp_throughput_bps(loss)
            assert model.loss_rate_from_throughput(throughput) == pytest.approx(loss, abs=1e-3)

    def test_inversion_clamps(self):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        assert model.loss_rate_from_throughput(0.0) == 1.0
        assert model.loss_rate_from_throughput(2 * model.nominal_throughput_bps()) == 0.0

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_throughput_always_positive_below_full_loss(self, loss):
        model = CapacityModel(payload_bytes=1470, rate=RATE_11MBPS)
        value = model.max_udp_throughput_bps(loss)
        assert 0.0 < value <= model.nominal_throughput_bps()

    @given(
        st.floats(min_value=0.0, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.95),
    )
    def test_monotone_property(self, p1, p2):
        model = CapacityModel(payload_bytes=1470, rate=RATE_1MBPS)
        if p1 <= p2:
            assert model.max_udp_throughput_bps(p1) >= model.max_udp_throughput_bps(p2) - 1e-9


class TestCombineLosses:
    def test_no_loss(self):
        assert combine_data_ack_losses(0.0, 0.0) == 0.0

    def test_one_sided(self):
        assert combine_data_ack_losses(0.3, 0.0) == pytest.approx(0.3)
        assert combine_data_ack_losses(0.0, 0.3) == pytest.approx(0.3)

    def test_combination(self):
        assert combine_data_ack_losses(0.2, 0.1) == pytest.approx(1 - 0.8 * 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            combine_data_ack_losses(1.4, 0.0)

    @given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_bounds_and_dominance(self, p_data, p_ack):
        combined = combine_data_ack_losses(p_data, p_ack)
        assert 0.0 <= combined <= 1.0
        assert combined >= max(p_data, p_ack) - 1e-12
