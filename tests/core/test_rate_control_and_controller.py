"""Tests for rate-control helpers and the online optimization controller."""

import pytest

from repro.core import (
    MAX_THROUGHPUT,
    OnlineOptimizer,
    PROPORTIONAL_FAIR,
    RateController,
    input_rates_from_outputs,
    tcp_ack_airtime_factor,
)
from repro.sim import MeshNetwork, chain_topology, no_shadowing_propagation


class TestRateControlHelpers:
    def test_ack_factor_matches_paper_formula(self):
        # (A + H) / (A + H + D) with 40-byte headers, 40-byte ACK, 1460 payload.
        factor = tcp_ack_airtime_factor(40, 40, 1460)
        assert factor == pytest.approx(1 - 80 / 1540)

    def test_ack_factor_validation(self):
        with pytest.raises(ValueError):
            tcp_ack_airtime_factor(0, 0, 0)

    def test_input_rates_from_outputs(self):
        inputs = input_rates_from_outputs([1e6, 2e6], [0.0, 0.5])
        assert inputs[0] == pytest.approx(1e6)
        assert inputs[1] == pytest.approx(4e6)

    def test_input_rates_validation(self):
        with pytest.raises(ValueError):
            input_rates_from_outputs([1e6], [0.0, 0.1])
        with pytest.raises(ValueError):
            input_rates_from_outputs([1e6], [1.5])

    def test_program_udp_sets_cbr_rate(self, cs_pair_network):
        flow = cs_pair_network.add_udp_flow([0, 1])
        controller = RateController()
        assignment = controller.program_udp(flow, target_output_bps=1e6, path_loss=0.2)
        assert flow.source.rate_bps == pytest.approx(1.25e6)
        assert assignment.input_rate_bps == pytest.approx(1.25e6)
        controller.release_udp(flow)
        assert flow.source.rate_bps is None

    def test_program_tcp_installs_shaper(self, chain_network):
        flow = chain_network.add_tcp_flow([0, 1, 2])
        controller = RateController()
        assignment = controller.program_tcp(flow, target_output_bps=1e6, path_loss=0.0)
        assert flow.flow.source.shaper is not None
        assert assignment.input_rate_bps == pytest.approx(1e6 * controller.ack_factor)
        # Re-programming updates the same shaper in place.
        controller.program_tcp(flow, target_output_bps=2e6, path_loss=0.0)
        assert flow.flow.source.shaper.rate_bps == pytest.approx(2e6 * controller.ack_factor)
        controller.release_tcp(flow)
        assert flow.flow.source.shaper is None


@pytest.fixture(scope="module")
def probed_chain():
    """A 3-node chain with two flows and two minutes of accumulated probes."""
    net = MeshNetwork(
        chain_topology(3, spacing_m=60.0),
        seed=21,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=11,
    )
    two_hop = net.add_udp_flow([0, 1, 2])
    one_hop = net.add_udp_flow([1, 2])
    net.enable_probing(period_s=0.5)
    net.run(80.0)
    return net, two_hop, one_hop


class TestOnlineOptimizer:
    def test_requires_flows(self, chain_network):
        with pytest.raises(ValueError):
            OnlineOptimizer(chain_network, [])

    def test_links_enumerated_in_flow_order(self, probed_chain):
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(net, [two_hop, one_hop], probing_window=100)
        assert controller.links == [(0, 1), (1, 2)]

    def test_link_estimates_reasonable_on_clean_chain(self, probed_chain):
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(net, [two_hop, one_hop], probing_window=100)
        estimates = controller.estimate_links()
        for link, estimate in estimates.items():
            assert estimate.channel_loss < 0.05
            assert 4e6 < estimate.capacity_bps < 6.5e6

    def test_two_hop_conflict_graph_marks_adjacent_links(self, probed_chain):
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(net, [two_hop, one_hop], probing_window=100)
        graph = controller.build_conflict_graph()
        assert graph.interferes((0, 1), (1, 2))

    def test_proportional_fair_decision_shape(self, probed_chain):
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(
            net, [two_hop, one_hop], utility=PROPORTIONAL_FAIR, probing_window=100
        )
        decision = controller.optimize()
        assert decision.optimization.success
        y_long = decision.target_outputs_bps[two_hop.flow_id]
        y_short = decision.target_outputs_bps[one_hop.flow_id]
        # Chain proportional fairness: the 1-hop flow gets about twice the
        # 2-hop flow's rate.
        assert y_short == pytest.approx(2 * y_long, rel=0.1)
        # Input rates exceed outputs only by the (small) path loss factor.
        for flow_id, x in decision.input_rates_bps.items():
            assert x >= decision.target_outputs_bps[flow_id]

    def test_max_throughput_gives_all_to_short_flow(self, probed_chain):
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(
            net, [two_hop, one_hop], utility=MAX_THROUGHPUT, probing_window=100
        )
        decision = controller.optimize()
        assert decision.target_outputs_bps[one_hop.flow_id] > 5 * max(
            decision.target_outputs_bps[two_hop.flow_id], 1.0
        )

    def test_apply_programs_udp_sources(self, probed_chain):
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(
            net, [two_hop, one_hop], utility=PROPORTIONAL_FAIR, probing_window=100
        )
        decision = controller.run_cycle()
        assert two_hop.source.rate_bps == pytest.approx(
            decision.input_rates_bps[two_hop.flow_id]
        )
        assert one_hop.source.rate_bps == pytest.approx(
            decision.input_rates_bps[one_hop.flow_id]
        )

    def test_rate_controlled_flows_achieve_targets(self, probed_chain):
        """End-to-end: programmed UDP rates are actually delivered."""
        net, two_hop, one_hop = probed_chain
        controller = OnlineOptimizer(
            net, [two_hop, one_hop], utility=PROPORTIONAL_FAIR, probing_window=100
        )
        decision = controller.run_cycle()
        two_hop.start()
        one_hop.start()
        net.run(6.0)
        start, end = net.now - 5.0, net.now
        for flow in (two_hop, one_hop):
            achieved = flow.throughput_bps(start, end)
            target = decision.target_outputs_bps[flow.flow_id]
            assert achieved == pytest.approx(target, rel=0.2)
        two_hop.stop()
        one_hop.stop()

    def test_probing_required(self):
        net = MeshNetwork(
            chain_topology(2), seed=1, propagation=no_shadowing_propagation()
        )
        flow = net.add_udp_flow([0, 1])
        controller = OnlineOptimizer(net, [flow], auto_probing=False)
        with pytest.raises(RuntimeError):
            controller.estimate_links()
