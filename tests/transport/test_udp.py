"""Tests for UDP sources and sinks over the simulated mesh."""

import pytest

from repro.mac.nominal import nominal_throughput_bps
from repro.phy.radio import RATE_11MBPS
from repro.sim.measurement import measure_isolated


class TestBacklogged:
    def test_backlogged_saturates_link(self, cs_pair_network):
        flow = cs_pair_network.add_udp_flow([0, 1], payload_bytes=1470)
        result = measure_isolated(cs_pair_network, flow, duration_s=1.5)
        assert result.throughput_bps > 0.9 * nominal_throughput_bps(1470, RATE_11MBPS)

    def test_stop_stops_traffic(self, cs_pair_network):
        flow = cs_pair_network.add_udp_flow([0, 1])
        flow.start()
        cs_pair_network.run(0.5)
        flow.stop()
        cs_pair_network.run(0.5)
        quiet_start = cs_pair_network.now
        cs_pair_network.run(0.5)
        assert flow.throughput_bps(quiet_start, cs_pair_network.now) == 0.0


class TestCbr:
    def test_cbr_rate_is_respected(self, cs_pair_network):
        target = 1.0e6
        flow = cs_pair_network.add_udp_flow([0, 1], rate_bps=target)
        result = measure_isolated(cs_pair_network, flow, duration_s=2.0)
        assert result.throughput_bps == pytest.approx(target, rel=0.1)

    def test_cbr_above_capacity_saturates(self, cs_pair_network):
        flow = cs_pair_network.add_udp_flow([0, 1], rate_bps=50e6)
        result = measure_isolated(cs_pair_network, flow, duration_s=1.5)
        nominal = nominal_throughput_bps(1470, RATE_11MBPS)
        assert result.throughput_bps < 1.1 * nominal

    def test_set_rate_changes_throughput(self, cs_pair_network):
        flow = cs_pair_network.add_udp_flow([0, 1], rate_bps=0.5e6)
        flow.start()
        cs_pair_network.run(2.0)
        first = flow.throughput_bps(1.0, 2.0)
        flow.source.set_rate(2.0e6)
        cs_pair_network.run(2.0)
        second = flow.throughput_bps(cs_pair_network.now - 1.0, cs_pair_network.now)
        assert second > 2.5 * first

    def test_zero_rate_sends_nothing(self, cs_pair_network):
        flow = cs_pair_network.add_udp_flow([0, 1], rate_bps=0.0)
        result = measure_isolated(cs_pair_network, flow, duration_s=1.0)
        assert result.throughput_bps == 0.0


class TestMultiHop:
    def test_two_hop_udp_delivery(self, chain_network):
        flow = chain_network.add_udp_flow([0, 1, 2], rate_bps=0.5e6)
        result = measure_isolated(chain_network, flow, duration_s=2.0)
        assert result.throughput_bps == pytest.approx(0.5e6, rel=0.15)

    def test_two_hop_backlogged_gets_about_half_capacity(self, chain_network):
        """Self-interference along a chain halves the end-to-end rate."""
        one_hop = chain_network.add_udp_flow([0, 1], payload_bytes=1470)
        alone = measure_isolated(chain_network, one_hop, duration_s=1.5)
        two_hop = chain_network.add_udp_flow([0, 1, 2], payload_bytes=1470)
        relayed = measure_isolated(chain_network, two_hop, duration_s=1.5)
        assert relayed.throughput_bps < 0.7 * alone.throughput_bps
        assert relayed.throughput_bps > 0.25 * alone.throughput_bps
