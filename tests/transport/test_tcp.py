"""Tests for the simplified TCP Reno implementation."""

import pytest

from repro.net.shaper import TokenBucketShaper
from repro.sim import MeshNetwork, chain_topology, no_shadowing_propagation


def _chain(num_nodes=3, rate_mbps=11, seed=5):
    return MeshNetwork(
        chain_topology(num_nodes, spacing_m=55.0),
        seed=seed,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=rate_mbps,
    )


class TestSingleFlow:
    def test_tcp_delivers_data_in_order(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        flow.start()
        net.run(3.0)
        sink = flow.flow.sink
        assert sink.cumulative_ack > 50
        assert sink.cumulative_ack == len(sink.received_seqs)

    def test_tcp_reaches_good_utilisation_on_clean_link(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        flow.start()
        net.run(4.0)
        # TCP over a clean 11 Mb/s one-hop link should exceed 3 Mb/s goodput.
        assert flow.throughput_bps(1.0, 4.0) > 3e6

    def test_cwnd_grows_from_slow_start(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        source = flow.flow.source
        assert source.cwnd == pytest.approx(1.0)
        flow.start()
        net.run(1.0)
        assert source.cwnd > 4.0

    def test_two_hop_tcp_works(self):
        net = _chain(3)
        flow = net.add_tcp_flow([0, 1, 2])
        flow.start()
        net.run(4.0)
        assert flow.throughput_bps(1.0, 4.0) > 1e6

    def test_stop_halts_sender(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        flow.start()
        net.run(1.0)
        flow.stop()
        sent_before = flow.flow.source.stats.segments_sent
        net.run(1.0)
        assert flow.flow.source.stats.segments_sent == sent_before


class TestLossRecovery:
    def test_lossy_link_triggers_recovery_but_still_delivers(self):
        net = MeshNetwork(
            chain_topology(2, spacing_m=55.0),
            seed=9,
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
            link_error_override={(0, 1): 0.6, (1, 0): 0.0},
        )
        flow = net.add_tcp_flow([0, 1])
        flow.start()
        net.run(6.0)
        source = flow.flow.source
        assert flow.flow.sink.cumulative_ack > 20
        assert source.stats.timeouts + source.stats.fast_retransmits > 0

    def test_rto_backs_off_on_dead_path(self):
        net = MeshNetwork(
            chain_topology(2, spacing_m=55.0),
            seed=9,
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
            link_error_override={(0, 1): 1.0, (1, 0): 1.0},
        )
        flow = net.add_tcp_flow([0, 1])
        flow.start()
        net.run(10.0)
        source = flow.flow.source
        assert source.stats.timeouts >= 2
        assert source.rto_s > 0.4
        assert flow.flow.sink.cumulative_ack == 0


class TestRateLimiting:
    def test_shaper_caps_tcp_goodput(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        flow.flow.source.set_rate_limit(1.0e6)
        flow.start()
        net.run(4.0)
        goodput = flow.throughput_bps(1.0, 4.0)
        assert goodput < 1.2e6
        assert goodput > 0.6e6

    def test_set_rate_limit_none_removes_cap(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        source = flow.flow.source
        source.set_rate_limit(1.0e6)
        assert isinstance(source.shaper, TokenBucketShaper)
        source.set_rate_limit(None)
        assert source.shaper is None

    def test_rate_limit_can_be_updated_in_place(self):
        net = _chain()
        flow = net.add_tcp_flow([0, 1])
        source = flow.flow.source
        source.set_rate_limit(1.0e6)
        first_shaper = source.shaper
        source.set_rate_limit(2.0e6)
        assert source.shaper is first_shaper
        assert source.shaper.rate_bps == pytest.approx(2.0e6)


class TestStarvation:
    def test_two_hop_flow_starves_without_rate_control(self):
        """Reproduces the classic mesh starvation of Figure 13 (TCP-noRC)."""
        net = _chain(3, rate_mbps=1, seed=3)
        two_hop = net.add_tcp_flow([0, 1, 2])
        one_hop = net.add_tcp_flow([1, 2])
        two_hop.start()
        one_hop.start()
        net.run(15.0)
        t2 = two_hop.throughput_bps(5.0, 15.0)
        t1 = one_hop.throughput_bps(5.0, 15.0)
        assert t1 > 2.0 * t2, f"expected 1-hop flow to dominate, got {t1/1e3:.0f} vs {t2/1e3:.0f} kbps"
