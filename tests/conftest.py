"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sim import MeshNetwork, carrier_sense_pair, no_shadowing_propagation  # noqa: E402


@pytest.fixture
def cs_pair_network() -> MeshNetwork:
    """A small carrier-sense link-pair network at 11 Mb/s (deterministic)."""
    topo = carrier_sense_pair()
    return MeshNetwork(
        topo.positions, seed=7, propagation=no_shadowing_propagation(), data_rate_mbps=11
    )


@pytest.fixture
def chain_network() -> MeshNetwork:
    """A three-node chain at 11 Mb/s (deterministic propagation)."""
    from repro.sim import chain_topology

    return MeshNetwork(
        chain_topology(3, spacing_m=55.0),
        seed=11,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=11,
    )
