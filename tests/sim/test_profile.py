"""Tests for the simulation profiler (repro.sim.profile)."""

from __future__ import annotations

from functools import partial

from repro.engine import Simulator
from repro.sim import MeshNetwork, SimProfiler, callback_site, chain_topology


class _Thing:
    def method(self) -> None:
        pass


def _free_function() -> None:
    pass


class TestCallbackSite:
    def test_free_function(self):
        assert callback_site(_free_function) == f"{__name__}._free_function"

    def test_bound_method_uses_qualname(self):
        assert callback_site(_Thing().method) == f"{__name__}._Thing.method"

    def test_partial_chains_unwrap_to_the_same_site(self):
        direct = callback_site(_free_function)
        assert callback_site(partial(_free_function)) == direct
        assert callback_site(partial(partial(_free_function, 1), 2)) == direct

    def test_per_node_partials_aggregate_into_one_site(self):
        a, b = _Thing(), _Thing()
        assert callback_site(partial(a.method)) == callback_site(partial(b.method))


class TestSimProfiler:
    def test_record_aggregates_per_site(self):
        prof = SimProfiler()
        prof.record(_free_function, 0.25)
        prof.record(partial(_free_function), 0.5)
        prof.record(_Thing().method, 1.0)
        site = f"{__name__}._free_function"
        assert prof.sites[site].events == 2
        assert prof.sites[site].wall_s == 0.75
        assert prof.total_events == 3
        assert prof.total_wall_s == 1.75

    def test_table_sorts_most_expensive_first(self):
        prof = SimProfiler()
        prof.record(_free_function, 0.1)
        prof.record(_Thing().method, 0.9)
        rows = prof.table()
        assert rows[0][0] == f"{__name__}._Thing.method"
        assert rows[1][0] == f"{__name__}._free_function"

    def test_render_is_a_markdown_table_with_total_row(self):
        prof = SimProfiler()
        prof.record(_free_function, 0.5)
        text = prof.render()
        assert text.startswith("| callback site |")
        assert "_free_function" in text
        assert "**total**" in text

    def test_context_manager_profiles_simulators_built_inside(self):
        with SimProfiler() as prof:
            sim = Simulator()
            sim.schedule(0.1, _free_function)
            sim.run_until(1.0)
        assert prof.total_events == 1
        # Outside the block the hook is uninstalled again.
        sim2 = Simulator()
        sim2.schedule(0.1, _free_function)
        sim2.run_until(1.0)
        assert prof.total_events == 1

    def test_profile_of_a_real_network_attributes_hot_sites(self):
        """End-to-end: a short chain run lands events in the expected
        medium/DCF callback sites and accounts for every dispatched event."""
        with SimProfiler() as prof:
            net = MeshNetwork(chain_topology(3), seed=1)
            net.add_udp_flow([0, 1, 2]).start()
            net.run(0.2)
        assert prof.total_events == net.sim.processed_events > 0
        sites = set(prof.sites)
        assert any("WirelessMedium._finish_transmission" in s for s in sites)
        assert prof.total_wall_s > 0.0
