"""Cross-backend byte-identity of a Figure 14 cell.

The fast-path PR made the simulation core the performance-critical
layer; this test is the corresponding identity gate at figure
granularity: one real Figure 14 grid cell (random_multiflow / TCP /
Prop controller) dispatched through each execution backend must produce
the same payload bytes as the inline serial reference.  Together with
the sim trace goldens (event granularity) and the experiment goldens
(scenario granularity) this closes the identity chain the CI
``sim-identity`` job runs.
"""

from __future__ import annotations

import json

import pytest

from repro.experiment import (
    BatchRunner,
    ControllerSpec,
    ExperimentSpec,
    ProbingSpec,
    ScenarioSpec,
    SerialBackend,
    WorkQueueBackend,
)

#: The same cell ``benchmarks/test_sim_core.py`` times: the repeated
#: unit of the Figure 14 grid.
FIG14_CELL = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="random_multiflow",
        transport="tcp",
        run_seed=1000,
        seed=7,
        num_flows=3,
        rate_mode="11",
    ),
    probing=ProbingSpec(warmup_s=45.0),
    controller=ControllerSpec(alpha=1.0, probing_window=80, payload_bytes=1460),
    cycles=1,
    cycle_measure_s=12.0,
    settle_s=2.0,
    label="fig14-identity-cell",
)


def _canonical(batch) -> str:
    return json.dumps(
        batch.to_dicts(include_runtime=False), sort_keys=True, separators=(",", ":")
    )


@pytest.mark.slow
def test_fig14_cell_is_byte_identical_across_backends(tmp_path) -> None:
    reference = _canonical(
        BatchRunner([FIG14_CELL], backend=SerialBackend(), cache=False).run()
    )
    assert reference  # the cell must actually produce a payload

    backends = {
        "process": "process",
        "work_queue": WorkQueueBackend(tmp_path / "queue", workers=1, timeout_s=600.0),
    }
    for name, backend in backends.items():
        batch = BatchRunner([FIG14_CELL], backend=backend, cache=False).run()
        assert _canonical(batch) == reference, (
            f"fig14 cell payload differs between serial and {name} backends"
        )


@pytest.mark.slow
def test_fig14_cell_rerun_is_byte_identical() -> None:
    """Two cold serial runs of the same cell agree bit for bit — the
    in-process determinism precondition for the cross-backend check."""
    first = _canonical(
        BatchRunner([FIG14_CELL], backend=SerialBackend(), cache=False).run()
    )
    second = _canonical(
        BatchRunner([FIG14_CELL], backend=SerialBackend(), cache=False).run()
    )
    assert first == second
