"""Tests for topology factories and the pair classifier."""

import math

import pytest

from repro.sim import MeshNetwork, no_shadowing_propagation
# Note: the testbed_* helpers are imported under aliases so pytest does
# not collect them as test functions (their names start with "test").
from repro.sim.topology import (
    carrier_sense_pair,
    chain_topology,
    classify_pair,
    grid_topology,
    independent_pair,
    information_asymmetry_pair,
    near_far_pair,
    random_link_pair,
)
from repro.sim.topology import testbed_positions as make_testbed_positions
from repro.sim.topology import testbed_propagation as make_testbed_propagation

import numpy as np


def _medium_for(topology):
    network = MeshNetwork(
        topology.positions, seed=1, propagation=no_shadowing_propagation(), data_rate_mbps=11
    )
    return network.medium


class TestPairFactories:
    def test_carrier_sense_pair_classified_cs(self):
        topo = carrier_sense_pair()
        assert classify_pair(_medium_for(topo), topo.link1, topo.link2) == "CS"

    def test_information_asymmetry_pair_classified_ia(self):
        topo = information_asymmetry_pair()
        assert classify_pair(_medium_for(topo), topo.link1, topo.link2) == "IA"

    def test_near_far_pair_classified_nf(self):
        topo = near_far_pair()
        assert classify_pair(_medium_for(topo), topo.link1, topo.link2) == "NF"

    def test_independent_pair_classified_ind(self):
        topo = independent_pair()
        assert classify_pair(_medium_for(topo), topo.link1, topo.link2) == "IND"

    def test_links_attribute(self):
        topo = carrier_sense_pair()
        assert topo.links == [(0, 1), (2, 3)]

    def test_both_links_usable(self):
        """Every factory must place each receiver within decode range."""
        for factory in (carrier_sense_pair, information_asymmetry_pair, near_far_pair, independent_pair):
            topo = factory()
            medium = _medium_for(topo)
            for tx, rx in topo.links:
                snr = medium.rx_power_dbm(tx, rx) - medium.capture.noise_floor_dbm
                assert snr > 10.0, f"{factory.__name__} produced an unusable link {tx}->{rx}"

    def test_random_pairs_cover_multiple_classes(self):
        rng = np.random.default_rng(11)
        classes = set()
        for _ in range(40):
            topo = random_link_pair(rng)
            classes.add(classify_pair(_medium_for(topo), topo.link1, topo.link2))
        assert len(classes) >= 2


class TestMultiHopTopologies:
    def test_chain_positions(self):
        positions = chain_topology(4, spacing_m=50.0)
        assert len(positions) == 4
        assert positions[3] == (150.0, 0.0)

    def test_chain_needs_two_nodes(self):
        with pytest.raises(ValueError):
            chain_topology(1)

    def test_grid_positions(self):
        positions = grid_topology(2, 3, spacing_m=10.0)
        assert len(positions) == 6
        assert positions[5] == (20.0, 10.0)

    def test_grid_validates_dimensions(self):
        with pytest.raises(ValueError):
            grid_topology(0, 3)


class TestTestbed:
    def test_eighteen_nodes(self):
        assert len(make_testbed_positions()) == 18

    def test_jitter_is_seeded(self):
        assert make_testbed_positions(seed=1) == make_testbed_positions(seed=1)
        assert make_testbed_positions(seed=1) != make_testbed_positions(seed=2)

    def test_propagation_has_shadowing(self):
        model = make_testbed_propagation(seed=0)
        assert model.shadowing_sigma_db > 0

    def test_testbed_has_both_good_and_marginal_links(self):
        """The synthetic testbed must offer a diversity of link qualities."""
        net = MeshNetwork(
            make_testbed_positions(seed=0), seed=0, propagation=make_testbed_propagation(seed=0),
            data_rate_mbps=11,
        )
        snrs = []
        nodes = net.node_ids
        for i in nodes:
            for j in nodes:
                if i < j:
                    snrs.append(net.medium.rx_power_dbm(i, j) - net.medium.capture.noise_floor_dbm)
        snrs = np.array(snrs)
        assert (snrs > 25).sum() >= 10, "expected several strong links"
        assert ((snrs > 5) & (snrs < 25)).sum() >= 10, "expected several marginal links"
        assert (snrs < 0).sum() >= 15, "expected several non-links (multi-hop needed)"

    def test_testbed_is_multihop_connected(self):
        """Every node pair is reachable, but not in a single hop."""
        import networkx as nx

        net = MeshNetwork(
            make_testbed_positions(seed=0), seed=0, propagation=make_testbed_propagation(seed=0),
            data_rate_mbps=11,
        )
        graph = nx.Graph()
        graph.add_nodes_from(net.node_ids)
        for i in net.node_ids:
            for j in net.node_ids:
                snr = net.medium.rx_power_dbm(i, j) - net.medium.capture.noise_floor_dbm
                if i < j and snr > 10.0:
                    graph.add_edge(i, j)
        assert nx.is_connected(graph)
        assert nx.diameter(graph) >= 2, "the testbed should require multi-hop routes"


class TestGeneratorTopologies:
    """The new position factories behind the topology generator registry."""

    def test_ring_nodes_sit_on_the_circle(self):
        from repro.sim.topology import ring_topology

        positions = ring_topology(6, radius_m=100.0)
        assert len(positions) == 6
        for x, y in positions.values():
            radius = math.hypot(x - 100.0, y - 100.0)
            assert radius == pytest.approx(100.0)
        assert min(x for x, _ in positions.values()) >= 0.0
        assert min(y for _, y in positions.values()) >= 0.0

    def test_ring_rejects_degenerate_inputs(self):
        from repro.sim.topology import ring_topology

        with pytest.raises(ValueError):
            ring_topology(2)
        with pytest.raises(ValueError):
            ring_topology(5, radius_m=0.0)

    def test_random_disk_is_seed_deterministic_and_in_bounds(self):
        from repro.sim.topology import random_disk_topology

        a = random_disk_topology(10, radius_m=120.0, seed=3)
        b = random_disk_topology(10, radius_m=120.0, seed=3)
        assert a == b
        for x, y in a.values():
            assert math.hypot(x - 120.0, y - 120.0) <= 120.0 + 1e-9

    def test_random_disk_relaxes_an_impossible_separation(self):
        from repro.sim.topology import random_disk_topology

        # 12 nodes at >= 400 m pairwise cannot fit a 100 m disk; the
        # factory must relax the separation instead of spinning forever.
        positions = random_disk_topology(
            12, radius_m=100.0, seed=1, min_separation_m=400.0, max_tries=50
        )
        assert len(positions) == 12

    def test_binary_tree_level_order_ids(self):
        from repro.sim.topology import binary_tree_topology

        positions = binary_tree_topology(3, spacing_m=50.0)
        assert len(positions) == 7  # 2**3 - 1
        # Children sit one level below their parent, spread around it.
        for parent in range(3):
            _, parent_y = positions[parent]
            for child in (2 * parent + 1, 2 * parent + 2):
                _, child_y = positions[child]
                assert child_y == pytest.approx(parent_y + 50.0)
        with pytest.raises(ValueError):
            binary_tree_topology(1)

    def test_parking_lot_backbone_and_stubs(self):
        from repro.sim.topology import parking_lot_topology

        positions = parking_lot_topology(4, spacing_m=60.0, stub_m=40.0)
        assert len(positions) == 7  # 4 backbone + 3 stubs
        for i in range(4):
            assert positions[i] == (i * 60.0, 0.0)
        for i in range(3):
            assert positions[4 + i] == (i * 60.0, 40.0)


    def test_random_disk_separation_holds_for_many_nodes(self):
        """Successful placements must not count towards the relaxation
        trigger — only consecutive rejections do."""
        from repro.sim.topology import random_disk_topology

        positions = random_disk_topology(
            60, radius_m=1e4, seed=5, min_separation_m=10.0, max_tries=50
        )
        points = list(positions.values())
        for i, (x1, y1) in enumerate(points):
            for x2, y2 in points[i + 1 :]:
                assert (x1 - x2) ** 2 + (y1 - y2) ** 2 >= 10.0**2
