"""Tests for the canned experiment scenarios."""

import pytest

from repro.sim.scenarios import (
    assign_link_rates,
    build_testbed_network,
    ett_link_weights,
    ground_truth_link_error,
    hidden_terminal_radio,
    random_multiflow_scenario,
    starvation_scenario,
)

import numpy as np


class TestTestbedHelpers:
    def test_build_testbed_network(self):
        network = build_testbed_network(seed=0)
        assert len(network.nodes) == 18

    def test_run_seed_changes_traffic_randomness_only(self):
        a = build_testbed_network(seed=0, run_seed=1)
        b = build_testbed_network(seed=0, run_seed=2)
        assert a.positions == b.positions
        assert a.sim.seed != b.sim.seed

    def test_ground_truth_link_error_bounds(self):
        network = build_testbed_network(seed=0)
        for link in [(0, 1), (0, 17), (0, 10)]:
            error = ground_truth_link_error(network, link)
            assert 0.0 <= error <= 1.0

    def test_ett_weights_exclude_marginal_links(self):
        network = build_testbed_network(seed=0)
        weights = ett_link_weights(network, min_snr_margin_db=14.0)
        assert weights, "expected at least some usable links"
        for link in weights:
            snr = network.medium.rx_power_dbm(*link) - network.medium.capture.noise_floor_dbm
            assert snr >= network.link_rate(link).min_sinr_db + 14.0

    def test_assign_link_rates_modes(self):
        rng = np.random.default_rng(0)
        network = build_testbed_network(seed=0)
        assign_link_rates(network, "1", rng)
        assert network.link_rate((0, 1)).bps == pytest.approx(1e6)
        assign_link_rates(network, "11", rng)
        assert network.link_rate((0, 1)).bps == pytest.approx(11e6)
        assign_link_rates(network, "mixed", rng)
        rates = {network.link_rate((tx, rx)).bps for tx in range(18) for rx in range(18) if tx != rx}
        assert rates == {1e6, 11e6}


class TestMultiFlowScenario:
    def test_scenario_routes_within_hop_budget(self):
        scenario = random_multiflow_scenario(seed=7, num_flows=4, max_hops=4)
        assert len(scenario.flows) == 4
        for route in scenario.routes:
            assert 1 <= route.hop_count <= 4

    def test_scenario_is_reproducible(self):
        a = random_multiflow_scenario(seed=7, num_flows=3)
        b = random_multiflow_scenario(seed=7, num_flows=3)
        assert [r.path for r in a.routes] == [r.path for r in b.routes]

    def test_tcp_transport_option(self):
        scenario = random_multiflow_scenario(seed=3, num_flows=2, transport="tcp")
        from repro.sim.network import TcpFlowHandle

        assert all(isinstance(flow, TcpFlowHandle) for flow in scenario.flows)

    def test_links_property_deduplicates(self):
        scenario = random_multiflow_scenario(seed=7, num_flows=4)
        assert len(scenario.links) == len(set(scenario.links))


class TestStarvationScenario:
    def test_gateway_is_hidden_from_far_node(self):
        scenario = starvation_scenario(seed=0)
        medium = scenario.network.medium
        assert not medium.can_sense(0, 2)
        assert medium.can_sense(0, 1)
        assert medium.can_sense(1, 2)

    def test_hidden_terminal_radio_reduces_cs_range(self):
        assert hidden_terminal_radio().cs_threshold_dbm > -91.0

    def test_flows_are_routed_upstream(self):
        scenario = starvation_scenario(seed=0)
        assert scenario.two_hop.path == [0, 1, 2]
        assert scenario.one_hop.path == [1, 2]
