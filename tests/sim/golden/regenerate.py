"""Sim-level golden traces: one frozen per-event digest per scenario.

Where the experiment goldens (``tests/experiment/golden``) freeze
end-of-run payloads, these fixtures freeze the simulation at *event
granularity*: an :class:`repro.sim.trace.EventTraceRecorder` folds every
frame-delivery attempt — virtual timestamp at full ``repr`` precision,
frame kind, directed link, size, retries, outcome — into a SHA-256, and
the digest plus event counters are committed as JSON.  A drifted digest
localises a behavioural change to the engine/medium/DCF hot path even
when aggregated throughput happens to land on the same numbers.

This module is the single source of truth for the scenario grid, the
canonical serialization and the regeneration entry point;
``tests/sim/test_trace_goldens.py`` imports it to re-run the same
scenarios and compare byte-for-byte.

When a digest moves **intentionally** (a deliberate semantics change in
the engine, PHY/MAC or transport):

1. regenerate the fixtures::

       PYTHONPATH=src python tests/sim/golden/regenerate.py

2. commit the refreshed JSON together with the change and say in the
   commit message *why* the traces moved (pass ``--dump`` to write the
   raw ``.trace`` lines next to each fixture for diffing two revisions).

Never regenerate to silence a failure you cannot explain — these
fixtures exist precisely so that "the goldens still pass" keeps meaning
"the simulation is byte-identical".
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Callable

GOLDEN_DIR = Path(__file__).resolve().parent

if __name__ == "__main__":  # running as a script from a source checkout
    _SRC = GOLDEN_DIR.parents[2] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.sim import (  # noqa: E402
    EventTraceRecorder,
    MeshNetwork,
    chain_topology,
    information_asymmetry_pair,
    no_shadowing_propagation,
    reduced_carrier_sense_radio,
)


def _chain3() -> MeshNetwork:
    """3-node chain: a forwarded backlogged flow plus reverse traffic.

    Exercises relaying, queue contention at the middle node and ACK
    exchange in both directions on a carrier-sensing line topology.
    """
    net = MeshNetwork(chain_topology(3), seed=11)
    net.add_udp_flow([0, 1, 2]).start()
    net.add_udp_flow([2, 1], rate_bps=400_000.0).start()
    return net


def _drift2() -> MeshNetwork:
    """2-node marginal link under Gaussian drift mobility.

    The 140 m spacing puts the link on the steep part of the PER curve,
    so every position epoch's power-table rebuild visibly changes
    delivery outcomes; freezing this trace pins the incremental
    ``update_positions`` path (row recompute, memo invalidation, snapshot
    balance) byte-for-byte across refactors.
    """
    from repro.sim import DynamicsDriver, build_mobility

    net = MeshNetwork(chain_topology(2, spacing_m=140.0), seed=5)
    net.add_udp_flow([0, 1]).start()
    trajectory = build_mobility(
        "drift",
        net.positions,
        {"drift_sigma_m": 8.0, "area_margin_m": 40.0},
        seed=5,
    )
    DynamicsDriver(net, trajectory=trajectory, epoch_s=0.1).install()
    return net


def _hidden_terminal() -> MeshNetwork:
    """Hidden-terminal (information-asymmetry) pair, shadowing off.

    Transmitters 0 and 2 cannot sense each other while receiver 1 hears
    both — the collision/capture pathology of Section 4.3.  Freezing this
    trace pins the interference bookkeeping and the capture/SINR path,
    which the chain scenario barely exercises.
    """
    net = MeshNetwork(
        information_asymmetry_pair().positions,
        seed=7,
        radio=reduced_carrier_sense_radio(),
        propagation=no_shadowing_propagation(),
    )
    net.add_udp_flow([0, 1]).start()
    net.add_udp_flow([2, 3]).start()
    return net


#: Scenario name -> network builder.  Keep each run cheap (well under a
#: second of wall clock): they execute in every tier-1 pass.
GOLDEN_SCENARIOS: dict[str, Callable[[], MeshNetwork]] = {
    "chain3": _chain3,
    "drift2": _drift2,
    "hidden_terminal": _hidden_terminal,
}

#: Simulated horizon per scenario (virtual seconds).
RUN_DURATION_S = 1.0


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def compute(name: str, keep_lines: bool = False) -> tuple[dict[str, object], EventTraceRecorder]:
    """Run scenario ``name`` and return ``(trace record, recorder)``."""
    net = GOLDEN_SCENARIOS[name]()
    recorder = EventTraceRecorder(net.sim, net.medium, keep_lines=keep_lines)
    net.run(RUN_DURATION_S)
    record = {
        "scenario": name,
        "duration_s": RUN_DURATION_S,
        "delivery_events": recorder.events,
        "digest_sha256": recorder.digest,
        # Engine-level counters: catch event-scheduling drift even when
        # no delivery attempt changes.
        "processed_events": net.sim.processed_events,
        "final_time_repr": repr(net.sim.now),
    }
    return record, recorder


def canonical_json(record: dict[str, object]) -> str:
    """The frozen byte representation: keys sorted, trailing newline —
    so fixtures diff cleanly in git."""
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


def main(argv: list[str]) -> int:
    dump = "--dump" in argv
    for name in GOLDEN_SCENARIOS:
        record, recorder = compute(name, keep_lines=dump)
        path = golden_path(name)
        text = canonical_json(record)
        changed = not path.exists() or path.read_text(encoding="utf-8") != text
        path.write_text(text, encoding="utf-8")
        if dump:
            (GOLDEN_DIR / f"{name}.trace").write_text(
                "".join(recorder.lines or []), encoding="utf-8"
            )
        print(f"{'rewrote' if changed else 'unchanged'}  {path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
