"""Core dynamics invariants: incremental power-table rebuilds, exact memo
invalidation, snapshot-balanced sensed energy across position epochs, churn
fail/revive semantics, and trajectory/schedule determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import (
    DynamicsDriver,
    EventTraceRecorder,
    MeshNetwork,
    build_mobility,
    chain_topology,
    generate_churn_schedule,
    mobility_names,
)
from repro.sim.dynamics import ChurnEvent, apply_rate_adaptation


def _net(num_nodes: int = 5, spacing_m: float = 80.0, seed: int = 11) -> MeshNetwork:
    return MeshNetwork(chain_topology(num_nodes, spacing_m=spacing_m), seed=seed)


class TestIncrementalRebuild:
    def test_matches_fresh_medium_bit_for_bit(self):
        """Moving nodes incrementally must equal a fresh build at the new
        positions in every table and scalar mirror."""
        net = _net()
        moved = {1: (95.0, 33.0), 3: (212.0, -41.0)}
        net.update_positions(moved)

        positions = dict(net.positions)
        fresh = MeshNetwork(positions, seed=11)

        assert np.array_equal(net.medium._power_dbm, fresh.medium._power_dbm)
        assert np.array_equal(net.medium._power_mw, fresh.medium._power_mw)
        assert net.medium._pow_dbm == fresh.medium._pow_dbm
        assert net.medium._pow_mw == fresh.medium._pow_mw
        assert net.medium._pow_dbm_from == fresh.medium._pow_dbm_from
        assert net.medium._pow_mw_from == fresh.medium._pow_mw_from
        assert net.medium._snr_from == fresh.medium._snr_from
        assert net.medium._sensed_rows == fresh.medium._sensed_rows

    def test_network_positions_follow(self):
        net = _net()
        net.update_positions({0: (7.0, 9.0)})
        assert net.positions[0] == (7.0, 9.0)
        assert net.medium.positions[0] == (7.0, 9.0)

    def test_unknown_node_rejected(self):
        net = _net()
        with pytest.raises(KeyError):
            net.update_positions({99: (0.0, 0.0)})
        with pytest.raises(KeyError):
            net.medium.set_node_active(99, False)

    def test_rows_are_replaced_not_mutated(self):
        """In-flight snapshots must keep pointing at the pre-epoch rows."""
        net = _net()
        before_sensed = net.medium._sensed_rows
        before_mw_row = net.medium._pow_mw_from[1]
        net.update_positions({1: (95.0, 33.0)})
        assert net.medium._sensed_rows is not before_sensed
        assert net.medium._pow_mw_from[1] is not before_mw_row
        # ... and the old objects still hold their pre-epoch values.
        assert before_sensed != net.medium._sensed_rows


class TestMemoInvalidation:
    def test_only_moved_keys_dropped(self):
        net = _net()
        medium = net.medium
        medium._per_cache[(0, 1, 11_000_000, 1500)] = 0.25
        medium._per_cache[(2, 3, 11_000_000, 1500)] = 0.5
        medium._resolve_cache[(0, 1, 11_000_000, 1500, 1.0)] = ("x", 0.0)
        medium._resolve_cache[(3, 4, 11_000_000, 1500, 1.0)] = ("y", 0.0)
        medium._airtime_cache[(1500, 11_000_000)] = 1e-3

        net.update_positions({1: (95.0, 33.0)})

        assert (0, 1, 11_000_000, 1500) not in medium._per_cache
        assert (2, 3, 11_000_000, 1500) in medium._per_cache
        assert (0, 1, 11_000_000, 1500, 1.0) not in medium._resolve_cache
        assert (3, 4, 11_000_000, 1500, 1.0) in medium._resolve_cache
        # airtime is position-independent and must survive an epoch
        assert (1500, 11_000_000) in medium._airtime_cache

    def test_broadcast_memo_cleared(self):
        net = _net()
        medium = net.medium
        medium._bcast_receivers[(0, 11_000_000)] = []
        net.update_positions({4: (400.0, 5.0)})
        assert not medium._bcast_receivers


class TestEpochTransparency:
    """Position epochs that move nothing must be invisible: same delivery
    trace, same RNG draws, no busy/idle flips — the strongest form of the
    snapshot-balance invariant, checked through the golden digest."""

    @staticmethod
    def _run(with_null_epochs: bool) -> str:
        net = MeshNetwork(chain_topology(3), seed=11)
        net.add_udp_flow([0, 1, 2]).start()
        net.add_udp_flow([2, 1], rate_bps=400_000.0).start()
        recorder = EventTraceRecorder(net.sim, net.medium)
        if with_null_epochs:
            def epoch() -> None:
                # recompute-in-place: same coordinates, full row rebuild,
                # memo invalidation and all
                net.update_positions({n: net.positions[n] for n in (0, 1)})
                net.sim.schedule(0.05, epoch)

            net.sim.schedule(0.05, epoch)
        net.run(1.0)
        return recorder.digest

    def test_null_move_epochs_leave_trace_identical(self):
        assert self._run(False) == self._run(True)


class TestChurn:
    def test_fail_stops_delivery_revive_restores_it(self):
        net = MeshNetwork(chain_topology(2), seed=3)
        handle = net.add_udp_flow([0, 1])
        handle.start()
        net.run(0.5)
        delivered_before = handle.sink.received_packets
        assert delivered_before > 0

        net.fail_node(1)
        net.run(0.5)
        assert handle.sink.received_packets == delivered_before
        assert net.medium.loss_counts["rx_off"] > 0

        net.revive_node(1)
        net.run(0.5)
        assert handle.sink.received_packets > delivered_before

    def test_failed_source_quiesces_and_revives(self):
        net = MeshNetwork(chain_topology(2), seed=3)
        handle = net.add_udp_flow([0, 1])
        handle.start()
        net.run(0.5)
        delivered_before = handle.sink.received_packets

        net.fail_node(0)
        assert net.nodes[0].mac.down
        assert net.nodes[0].mac.queue_length == 0
        net.run(0.5)
        assert handle.sink.received_packets == delivered_before

        # revive re-primes the backlogged source (the refresh kick)
        net.revive_node(0)
        net.run(0.5)
        assert handle.sink.received_packets > delivered_before

    def test_fail_is_idempotent(self):
        net = MeshNetwork(chain_topology(2), seed=3)
        net.fail_node(1)
        net.fail_node(1)
        net.revive_node(1)
        assert not net.medium._inactive


class TestTrajectories:
    def test_registered_models(self):
        assert "waypoint" in mobility_names()
        assert "drift" in mobility_names()

    @pytest.mark.parametrize("model,params", [
        ("waypoint", {"epoch_s": 1.0, "speed_mps": 2.0, "pause_s": 0.5}),
        ("drift", {"drift_sigma_m": 3.0}),
    ])
    def test_same_seed_same_path(self, model, params):
        positions = dict(chain_topology(4, spacing_m=70.0))
        a = build_mobility(model, positions, params, seed=9)
        b = build_mobility(model, positions, params, seed=9)
        for _ in range(5):
            assert a.step() == b.step()

    def test_different_seed_diverges(self):
        positions = dict(chain_topology(4, spacing_m=70.0))
        a = build_mobility("drift", positions, {"drift_sigma_m": 3.0}, seed=9)
        b = build_mobility("drift", positions, {"drift_sigma_m": 3.0}, seed=10)
        assert a.step() != b.step()

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_mobility("teleport", {0: (0.0, 0.0)}, {}, seed=0)


class TestChurnSchedule:
    def test_deterministic_and_sorted(self):
        ids = list(range(6))
        kwargs = dict(num_events=3, start_s=5.0, end_s=20.0, down_s=4.0, seed=2)
        a = generate_churn_schedule(ids, **kwargs)
        b = generate_churn_schedule(ids, **kwargs)
        assert a == b
        assert list(a) == sorted(a, key=lambda e: (e.time_s, e.node_id, e.action))

    def test_protected_nodes_never_fail(self):
        ids = list(range(6))
        schedule = generate_churn_schedule(
            ids, protected=frozenset({0, 5}), num_events=4, seed=2
        )
        assert all(event.node_id not in {0, 5} for event in schedule)

    def test_join_follows_fail_by_down_s(self):
        schedule = generate_churn_schedule(
            list(range(4)), num_events=2, start_s=1.0, end_s=9.0, down_s=3.0, seed=7
        )
        fails = {e.node_id: e.time_s for e in schedule if e.action == "fail"}
        joins = {e.node_id: e.time_s for e in schedule if e.action == "join"}
        assert set(joins) == set(fails)
        for node, t in fails.items():
            assert joins[node] == pytest.approx(t + 3.0)

    def test_permanent_failure_has_no_join(self):
        schedule = generate_churn_schedule(list(range(4)), num_events=2, down_s=0.0, seed=7)
        assert all(event.action == "fail" for event in schedule)


class TestDynamicsDriver:
    def test_counters_accumulate(self):
        net = MeshNetwork(chain_topology(3, spacing_m=70.0), seed=4)
        net.add_udp_flow([0, 1, 2]).start()
        trajectory = build_mobility(
            "drift", net.positions, {"drift_sigma_m": 2.0}, seed=4
        )
        schedule = (
            ChurnEvent(time_s=0.3, node_id=1, action="fail"),
            ChurnEvent(time_s=0.6, node_id=1, action="join"),
        )
        driver = DynamicsDriver(net, trajectory=trajectory, epoch_s=0.1, churn=schedule)
        driver.install()
        net.run(1.0)
        assert driver.meta["epochs_applied"] >= 9
        assert driver.meta["nodes_moved"] > 0
        assert driver.meta["fails_applied"] == 1
        assert driver.meta["joins_applied"] == 1

    def test_install_is_once_only(self):
        net = MeshNetwork(chain_topology(2), seed=0)
        driver = DynamicsDriver(net)
        driver.install()
        with pytest.raises(RuntimeError):
            driver.install()


class TestRateAdaptation:
    def test_threshold_assignment(self):
        # 60 m spacing: adjacent links comfortably above 24 dB SNR at
        # 0 dB shadowing; the 2-hop pair far below it.
        from repro.sim import no_shadowing_propagation

        net = MeshNetwork(
            chain_topology(3, spacing_m=60.0),
            seed=0,
            propagation=no_shadowing_propagation(),
        )
        apply_rate_adaptation(net)
        assert net.link_rate((0, 1)).bps == 11e6
        assert net.link_rate((0, 2)).bps == 1e6
