"""Property tests for the medium's incremental fast-path bookkeeping.

The hot path keeps three pieces of state incrementally instead of
recomputing them per event: per-node sensed energy (``_sensed_mw``,
updated by row add/remove as transmissions start and stop), per-reception
interference (``cur_interference_mw``), and the precomputed pairwise
power tables.  These properties pin the fast path to its definition:

* after an arbitrary random interleaving of overlapping transmissions,
  every node's incrementally-maintained sensed energy equals the
  from-scratch sum over currently ongoing transmitters, and every live
  reception's current interference equals the from-scratch sum over the
  other ongoing transmitters;
* the busy/idle state the fused update loop reports to MACs equals the
  carrier-sense definition recomputed from scratch;
* the precomputed power matrices and their scalar mirrors carry exactly
  (``==``, not approximately) the value of the scalar formula the lazy
  path evaluated per call.
"""

from __future__ import annotations

import math
from functools import partial

from hypothesis import given, settings, strategies as st

from repro.engine import Simulator
from repro.mac.frames import Frame, FrameKind
from repro.mac.medium import WirelessMedium
from repro.phy.propagation import dbm_to_mw
from repro.phy.radio import frame_airtime, rate_from_mbps
from repro.sim import no_shadowing_propagation

_RATE = rate_from_mbps(11)


class _RecordingMac:
    """Minimal MacListener: records the busy state the medium reports."""

    def __init__(self) -> None:
        self.busy = False
        self.flips = 0

    def on_medium_busy(self) -> None:
        self.busy = True
        self.flips += 1

    def on_medium_idle(self) -> None:
        self.busy = False
        self.flips += 1

    def on_frame_received(self, frame: Frame, from_id: int) -> None:
        pass

    def on_transmission_end(self, frame: Frame) -> None:
        pass


def _build_medium(
    coords: frozenset[tuple[int, int]], register_macs: bool
) -> tuple[Simulator, WirelessMedium, dict[int, _RecordingMac]]:
    positions = {
        i: (float(x) * 30.0, float(y) * 30.0) for i, (x, y) in enumerate(sorted(coords))
    }
    sim = Simulator(seed=0)
    medium = WirelessMedium(sim, positions, propagation=no_shadowing_propagation())
    macs: dict[int, _RecordingMac] = {}
    if register_macs:
        for node in positions:
            macs[node] = _RecordingMac()
            medium.register_mac(node, macs[node])
    return sim, medium, macs


def _check_invariants(
    medium: WirelessMedium, macs: dict[int, _RecordingMac], failures: list[str]
) -> None:
    """Compare incremental state against from-scratch recomputation."""
    ongoing = list(medium._ongoing.values())
    # Sensed energy: sum of the (diagonal-zeroed) row entries of every
    # transmitter currently on the air.  Incremental adds/removes follow
    # a different float summation order than the from-scratch sum, so
    # compare with a tight relative tolerance rather than ``==``.
    for node, j in medium._node_index.items():
        expected = 0.0
        for t in ongoing:
            expected += medium._sensed_rows[medium._node_index[t.tx_id]][j]
        actual = medium._sensed_mw[j]
        if actual < 0.0:
            failures.append(f"sensed[{node}] negative: {actual!r}")
        if not math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-18):
            failures.append(f"sensed[{node}]: incremental {actual!r} != sum {expected!r}")
        if macs:
            busy_expected = (
                node in medium._transmitting or actual >= medium._cs_threshold_mw
            )
            if medium.is_busy(node) != busy_expected:
                failures.append(f"is_busy({node}) != carrier-sense definition")
            if macs[node].busy != busy_expected:
                failures.append(f"mac[{node}].busy != carrier-sense definition")
    # Live receptions: current interference equals the sum over the
    # *other* ongoing transmitters (a live reception's receiver is never
    # itself transmitting — that would have failed it as half-duplex).
    for t in ongoing:
        for rx_id, reception in t.receptions.items():
            if reception.failure is not None:
                continue
            expected = 0.0
            for other in ongoing:
                if other.tx_id != t.tx_id:
                    expected += medium._pow_mw_from[other.tx_id][rx_id]
            actual = reception.cur_interference_mw
            if not math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-18):
                failures.append(
                    f"interference({t.tx_id}->{rx_id}): {actual!r} != sum {expected!r}"
                )
            if reception.peak_interference_mw < actual - 1e-18:
                failures.append(f"peak < current for {t.tx_id}->{rx_id}")


_coords = st.frozensets(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=2, max_size=6
)
_ops = st.lists(
    st.tuples(
        st.integers(0, 5),  # transmitter pick (mod node count)
        st.floats(0.0, 3e-3, allow_nan=False, allow_infinity=False),  # start gap
        st.sampled_from([40, 200, 1500]),  # frame size on air
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None)
@given(coords=_coords, ops=_ops, register_macs=st.booleans())
def test_incremental_state_matches_recomputation(
    coords: frozenset[tuple[int, int]], ops, register_macs: bool
) -> None:
    """Random overlapping transmissions: incremental sensed energy,
    busy state and per-reception interference all equal their
    from-scratch definitions at every event boundary."""
    sim, medium, macs = _build_medium(coords, register_macs)
    ids = sorted(medium.positions)
    n = len(ids)
    failures: list[str] = []
    check = partial(_check_invariants, medium, macs, failures)

    t = 0.0
    next_free = {node: 0.0 for node in ids}
    horizon = 0.0
    for pick, gap, size in ops:
        node = ids[pick % n]
        t += gap
        start = max(t, next_free[node] + 1e-9)
        dst = ids[(pick + 1) % n]
        frame = Frame(kind=FrameKind.DATA, src=node, dst=dst, size_bytes=size, rate=_RATE)
        sim.schedule_at(start, partial(medium.begin_transmission, node, frame))
        airtime = frame_airtime(size, _RATE)
        next_free[node] = start + airtime
        horizon = max(horizon, next_free[node])
        # Probe mid-flight and right after this frame leaves the air.
        sim.schedule_at(start + airtime / 2.0, check)
        sim.schedule_at(next_free[node] + 1e-9, check)

    sim.run_until(horizon + 1e-6)
    check()  # all-idle end state: sensed energy must be back at zero
    assert not failures, "\n".join(failures[:10])
    assert not medium._ongoing


@settings(max_examples=30, deadline=None)
@given(coords=_coords)
def test_power_tables_match_scalar_formula_exactly(
    coords: frozenset[tuple[int, int]]
) -> None:
    """Matrix entries and every scalar mirror equal the lazy per-call
    formula bit-for-bit (``==`` on floats, no tolerance)."""
    _sim, medium, _macs = _build_medium(coords, register_macs=False)
    eirp = medium.radio.tx_power_dbm + 2.0 * medium.radio.antenna_gain_dbi
    noise = medium.capture.noise_floor_dbm
    for a in medium.positions:
        i = medium._node_index[a]
        for b in medium.positions:
            j = medium._node_index[b]
            dbm = eirp - medium.propagation.path_loss_db(medium.distance(a, b), (a, b))
            mw = dbm_to_mw(dbm)
            assert medium.rx_power_dbm(a, b) == dbm
            assert medium.rx_power_mw(a, b) == mw
            assert float(medium._power_dbm[i, j]) == dbm
            assert float(medium._power_mw[i, j]) == mw
            assert medium._pow_dbm_from[a][b] == dbm
            assert medium._pow_mw_from[a][b] == mw
            assert medium._snr_from[a][b] == dbm - noise
            expected_sensed = 0.0 if i == j else mw
            assert medium._sensed_rows[i][j] == expected_sensed
