"""Sim-level golden traces: frozen per-event digests per scenario.

Every frame-delivery attempt of each canned scenario is folded into a
SHA-256 by :class:`repro.sim.trace.EventTraceRecorder`; the digest and
event counters are frozen under ``tests/sim/golden/``.  A failure here
means the simulation's event-level behaviour changed — see
``golden/regenerate.py`` (the single source of truth for the scenario
grid and serialization) for the documented regeneration procedure when
the change is intentional.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_golden_module():
    spec = importlib.util.spec_from_file_location(
        "sim_golden_regenerate", _GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


golden = _load_golden_module()


def test_every_scenario_has_a_fixture() -> None:
    for name in golden.GOLDEN_SCENARIOS:
        assert golden.golden_path(name).exists(), (
            f"missing sim golden fixture for {name!r}; run "
            "PYTHONPATH=src python tests/sim/golden/regenerate.py"
        )


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SCENARIOS))
def test_trace_matches_golden(name: str) -> None:
    """Re-run the scenario; the per-event digest must match byte-for-byte."""
    record, _recorder = golden.compute(name)
    frozen_text = golden.golden_path(name).read_text(encoding="utf-8")
    assert golden.canonical_json(record) == frozen_text, (
        f"sim trace for {name!r} drifted from its golden digest — the "
        "engine/medium/DCF behaviour changed at event granularity. If "
        "intentional, regenerate via tests/sim/golden/regenerate.py and "
        "explain the move in the commit message."
    )


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SCENARIOS))
def test_traces_are_nontrivial(name: str) -> None:
    """Guard the fixtures themselves: a scenario that stops generating
    traffic would make the digest test vacuous."""
    frozen = json.loads(golden.golden_path(name).read_text(encoding="utf-8"))
    assert frozen["delivery_events"] > 100
    assert frozen["processed_events"] > frozen["delivery_events"]


def test_recorder_digest_is_incremental_and_order_sensitive() -> None:
    """Unit-level contract of the recorder: the digest distinguishes
    event order and accumulates without finalizing."""
    record, recorder = golden.compute("chain3", keep_lines=True)
    assert recorder.lines, "keep_lines=True must retain the raw trace"
    assert len(recorder.lines) == recorder.events == record["delivery_events"]
    # hexdigest() is repeatable (non-finalizing).
    assert recorder.digest == recorder.digest == record["digest_sha256"]
    # The digest is exactly SHA-256 over the concatenated lines.
    import hashlib

    joined = "".join(recorder.lines).encode("utf-8")
    assert hashlib.sha256(joined).hexdigest() == recorder.digest
