"""Tests for the two-phase measurement drivers of Section 4."""

import pytest

from repro.sim import (
    MeshNetwork,
    carrier_sense_pair,
    independent_pair,
    information_asymmetry_pair,
    measure_flows,
    measure_isolated,
    measure_pair,
    no_shadowing_propagation,
)
from repro.sim.measurement import apply_input_rates


def _pair_network(factory, mbps=11, seed=13, **kwargs):
    topo = factory()
    net = MeshNetwork(
        topo.positions, seed=seed, propagation=no_shadowing_propagation(),
        data_rate_mbps=mbps, **kwargs,
    )
    return net, net.add_udp_flow([0, 1]), net.add_udp_flow([2, 3])


class TestMeasureFlows:
    def test_duration_must_be_positive(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        with pytest.raises(ValueError):
            measure_flows(net, [f1], duration_s=0.0)

    def test_isolated_measurement_reports_loss(self):
        net, f1, _ = _pair_network(
            carrier_sense_pair, link_error_override={(0, 1): 0.995, (1, 0): 0.0}
        )
        result = measure_isolated(net, f1, duration_s=2.0)
        assert result.loss_rate > 0.1
        assert result.throughput_bps < 2e6

    def test_clean_link_has_negligible_loss(self):
        net, f1, _ = _pair_network(carrier_sense_pair)
        result = measure_isolated(net, f1, duration_s=1.5)
        assert result.loss_rate < 0.02

    def test_flows_stopped_after_measurement(self):
        net, f1, _ = _pair_network(carrier_sense_pair)
        measure_isolated(net, f1, duration_s=1.0)
        quiet_start = net.now
        net.run(1.0)
        assert f1.throughput_bps(quiet_start, net.now) == 0.0


class TestMeasurePair:
    def test_lir_of_cs_pair_near_half(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        result = measure_pair(net, f1, f2, duration_s=1.5)
        assert 0.4 < result.lir < 0.75

    def test_lir_of_independent_pair_near_one(self):
        net, f1, f2 = _pair_network(independent_pair)
        result = measure_pair(net, f1, f2, duration_s=1.5)
        assert result.lir > 0.9

    def test_ia_pair_at_11mbps_starves_one_link(self):
        """With a reduced carrier-sense range, the hidden transmitter's
        frames overlap at receiver 1 below the 11 Mb/s capture threshold,
        starving link 1 (the classic IA outcome)."""
        from repro.sim.topology import reduced_carrier_sense_radio

        topo = information_asymmetry_pair(link1_len_m=65.0, link2_len_m=50.0, tx_gap_m=185.0)
        net = MeshNetwork(
            topo.positions,
            seed=13,
            radio=reduced_carrier_sense_radio(11),
            propagation=no_shadowing_propagation(),
            data_rate_mbps=11,
        )
        f1, f2 = net.add_udp_flow([0, 1]), net.add_udp_flow([2, 3])
        result = measure_pair(net, f1, f2, duration_s=1.5)
        assert min(result.c31, result.c32) < 0.25 * max(result.c31, result.c32)

    def test_ia_pair_at_1mbps_captures(self):
        """The same IA geometry at 1 Mb/s mostly captures: the feasible
        region rises above the time-sharing line (Figure 5's effect)."""
        from repro.sim.topology import reduced_carrier_sense_radio

        topo = information_asymmetry_pair(link1_len_m=65.0, link2_len_m=50.0, tx_gap_m=185.0)
        net = MeshNetwork(
            topo.positions,
            seed=13,
            radio=reduced_carrier_sense_radio(1),
            propagation=no_shadowing_propagation(),
            data_rate_mbps=1,
        )
        f1, f2 = net.add_udp_flow([0, 1]), net.add_udp_flow([2, 3])
        result = measure_pair(net, f1, f2, duration_s=1.5)
        assert result.lir > 0.7

    def test_primary_points_positive(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        result = measure_pair(net, f1, f2, duration_s=1.0)
        assert result.c11 > 1e6 and result.c22 > 1e6


class TestApplyInputRates:
    def test_feasible_vector_is_reported_feasible(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        result = apply_input_rates(net, [f1, f2], [1.5e6, 1.5e6], duration_s=2.0)
        assert result.feasible
        assert all(a > 1.2e6 for a in result.achieved_bps)

    def test_infeasible_vector_is_reported_infeasible(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        result = apply_input_rates(net, [f1, f2], [4.5e6, 4.5e6], duration_s=2.0)
        assert not result.feasible

    def test_rate_count_must_match(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        with pytest.raises(ValueError):
            apply_input_rates(net, [f1, f2], [1e6], duration_s=1.0)

    def test_expected_accounts_for_loss(self):
        net, f1, f2 = _pair_network(carrier_sense_pair)
        result = apply_input_rates(
            net, [f1], [1e6], loss_rates=[0.3], duration_s=1.0
        )
        assert result.expected_bps[0] == pytest.approx(0.7e6)
