"""Tests for the discrete-event simulation kernel."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine import Simulator, rng_spawn_key


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.run_until(1.0)
        assert order == [1, 2]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run_until(1.0)
        assert seen == [pytest.approx(0.5)]
        assert sim.now == pytest.approx(1.0)

    def test_run_until_does_not_execute_future_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append("late"))
        sim.run_until(1.0)
        assert seen == []
        sim.run_until(3.0)
        assert seen == ["late"]

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(0.1, lambda: seen.append("x"))
        event.cancel()
        sim.run_until(1.0)
        assert seen == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run_until(1.0)
        with pytest.raises(ValueError):
            sim.schedule_at(0.2, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(0.25, lambda: seen.append(sim.now))

        sim.schedule(0.5, first)
        sim.run_until(1.0)
        assert seen == [pytest.approx(0.5), pytest.approx(0.75)]

    def test_pending_and_processed_counters(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        evt = sim.schedule(0.2, lambda: None)
        evt.cancel()
        assert sim.pending_events == 1
        sim.run_until(1.0)
        assert sim.processed_events == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
    def test_arbitrary_delays_execute_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run_until(200.0)
        assert fired == sorted(delays)
        assert len(fired) == len(delays)


class TestRngStreams:
    def test_streams_are_reproducible(self):
        a = Simulator(seed=5).rng_stream("mac-1").random(5)
        b = Simulator(seed=5).rng_stream("mac-1").random(5)
        assert list(a) == list(b)

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=5)
        a = sim.rng_stream("mac-1").random(5)
        b = sim.rng_stream("mac-2").random(5)
        assert list(a) != list(b)

    def test_streams_differ_by_seed(self):
        a = Simulator(seed=5).rng_stream("mac-1").random(5)
        b = Simulator(seed=6).rng_stream("mac-1").random(5)
        assert list(a) != list(b)

    def test_same_stream_returned_on_repeat_lookup(self):
        sim = Simulator(seed=5)
        assert sim.rng_stream("x") is sim.rng_stream("x")

    def test_spawn_key_is_hash_seed_independent(self):
        """Stream seeding must not depend on PYTHONHASHSEED.

        The spawn key is a CRC32 of the stream name — these constants
        pin the exact values so that runs agree across interpreter
        processes (required for the parallel batch runner).
        """
        assert rng_spawn_key("medium") == 3329443255
        assert rng_spawn_key("mac-1") == 528481067
        assert rng_spawn_key("") == 0

    def test_stream_draws_match_pinned_seed_sequence(self):
        stream = Simulator(seed=5).rng_stream("medium")
        reference = np.random.default_rng(
            np.random.SeedSequence(entropy=5, spawn_key=(3329443255,))
        )
        assert list(stream.random(4)) == list(reference.random(4))
