"""Tests for the discrete-event simulation kernel."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine import Simulator, rng_spawn_key


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.run_until(1.0)
        assert order == [1, 2]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run_until(1.0)
        assert seen == [pytest.approx(0.5)]
        assert sim.now == pytest.approx(1.0)

    def test_run_until_does_not_execute_future_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append("late"))
        sim.run_until(1.0)
        assert seen == []
        sim.run_until(3.0)
        assert seen == ["late"]

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(0.1, lambda: seen.append("x"))
        event.cancel()
        sim.run_until(1.0)
        assert seen == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run_until(1.0)
        with pytest.raises(ValueError):
            sim.schedule_at(0.2, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(0.25, lambda: seen.append(sim.now))

        sim.schedule(0.5, first)
        sim.run_until(1.0)
        assert seen == [pytest.approx(0.5), pytest.approx(0.75)]

    def test_pending_and_processed_counters(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        evt = sim.schedule(0.2, lambda: None)
        evt.cancel()
        assert sim.pending_events == 1
        sim.run_until(1.0)
        assert sim.processed_events == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
    def test_arbitrary_delays_execute_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run_until(200.0)
        assert fired == sorted(delays)
        assert len(fired) == len(delays)


class TestRngStreams:
    def test_streams_are_reproducible(self):
        a = Simulator(seed=5).rng_stream("mac-1").random(5)
        b = Simulator(seed=5).rng_stream("mac-1").random(5)
        assert list(a) == list(b)

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=5)
        a = sim.rng_stream("mac-1").random(5)
        b = sim.rng_stream("mac-2").random(5)
        assert list(a) != list(b)

    def test_streams_differ_by_seed(self):
        a = Simulator(seed=5).rng_stream("mac-1").random(5)
        b = Simulator(seed=6).rng_stream("mac-1").random(5)
        assert list(a) != list(b)

    def test_same_stream_returned_on_repeat_lookup(self):
        sim = Simulator(seed=5)
        assert sim.rng_stream("x") is sim.rng_stream("x")

    def test_spawn_key_is_hash_seed_independent(self):
        """Stream seeding must not depend on PYTHONHASHSEED.

        The spawn key is a CRC32 of the stream name — these constants
        pin the exact values so that runs agree across interpreter
        processes (required for the parallel batch runner).
        """
        assert rng_spawn_key("medium") == 3329443255
        assert rng_spawn_key("mac-1") == 528481067
        assert rng_spawn_key("") == 0

    def test_stream_draws_match_pinned_seed_sequence(self):
        stream = Simulator(seed=5).rng_stream("medium")
        reference = np.random.default_rng(
            np.random.SeedSequence(entropy=5, spawn_key=(3329443255,))
        )
        assert list(stream.random(4)) == list(reference.random(4))


class TestHeapCompaction:
    """Cancelled events are lazily deleted; compaction bounds the heap.

    The DCF churns timers constantly (every deferral cancels and
    reschedules a backoff/ACK timeout), so dead heap entries must not
    accumulate — before compaction, a long run's heap grew with the
    number of cancellations rather than the number of live events.
    """

    def test_schedule_cancel_churn_keeps_heap_bounded(self):
        sim = Simulator()
        live = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        for _ in range(10_000):
            sim.schedule(500.0, lambda: None).cancel()
        # Compaction triggers whenever cancelled entries outnumber live
        # ones (past a small floor), so the raw heap stays within a
        # constant factor of the live set instead of growing to ~10k.
        assert sim.queued_entries < 200
        assert sim.pending_events == len(live)

    def test_double_cancel_does_not_corrupt_accounting(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.1, lambda: fired.append("dead"))
        event.cancel()
        event.cancel()  # idempotent: must not double-count
        sim.schedule(0.2, lambda: fired.append("live"))
        for _ in range(200):  # push accounting past the compaction floor
            sim.schedule(0.15, lambda: None).cancel()
        sim.run_until(1.0)
        assert fired == ["live"]
        assert sim.queued_entries == 0

    def test_cancelling_from_inside_a_callback_survives_compaction(self):
        """Compaction rebuilds the heap in place mid-run; the run loop's
        alias must keep seeing the surviving events, in order."""
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(0.5 + i * 1e-6, lambda: fired.append("dead"))
                  for i in range(300)]

        def purge():
            fired.append("purge")
            for event in doomed:
                event.cancel()

        sim.schedule(0.1, purge)
        sim.schedule(0.9, lambda: fired.append("after"))
        sim.run_until(1.0)
        assert fired == ["purge", "after"]
        assert sim.processed_events == 2

    def test_cancelled_events_popped_normally_below_threshold(self):
        """A few cancellations never trigger compaction; the run loop
        skips the dead entries as it pops them."""
        sim = Simulator()
        fired = []
        for i in range(10):
            event = sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
            if i % 2:
                event.cancel()
        sim.run_until(2.0)
        assert fired == [0, 2, 4, 6, 8]
        assert sim.queued_entries == 0


class TestProfilerHook:
    """The duck-typed profiler hook on the run loop."""

    class _FakeProfiler:
        """Deterministic stand-in: the 'clock' ticks once per call."""

        def __init__(self):
            self.ticks = 0
            self.recorded = []

        def clock(self):
            self.ticks += 1
            return float(self.ticks)

        def record(self, callback, elapsed_s):
            self.recorded.append((callback, elapsed_s))

    def test_instance_profiler_sees_every_dispatched_event(self):
        sim = Simulator()
        prof = self._FakeProfiler()
        sim.profiler = prof
        seen = []
        sim.schedule(0.1, lambda: seen.append("a"))
        sim.schedule(0.2, lambda: seen.append("b"))
        cancelled = sim.schedule(0.3, lambda: seen.append("dead"))
        cancelled.cancel()
        sim.run_until(1.0)
        assert seen == ["a", "b"]
        # One (callback, elapsed) pair per executed event; elapsed is
        # clock() - clock() = 1.0 with the ticking fake.
        assert [elapsed for _, elapsed in prof.recorded] == [1.0, 1.0]
        assert sim.processed_events == 2

    def test_profiled_and_unprofiled_runs_are_identical(self):
        """Profiling must not change simulation behaviour, only observe it."""

        def drive(sim):
            order = []

            def reschedule():
                order.append(sim.now)
                if sim.now < 0.5:
                    sim.schedule(0.125, reschedule)

            sim.schedule(0.125, reschedule)
            sim.run_until(1.0)
            return order, sim.now, sim.processed_events

        plain = drive(Simulator(seed=3))
        profiled_sim = Simulator(seed=3)
        profiled_sim.profiler = self._FakeProfiler()
        assert drive(profiled_sim) == plain

    def test_default_profiler_is_process_wide_and_restorable(self):
        from repro.engine import set_default_profiler

        prof = self._FakeProfiler()
        previous = set_default_profiler(prof)
        try:
            sim = Simulator()  # constructed *after* install: still profiled
            sim.schedule(0.1, lambda: None)
            sim.run_until(1.0)
            assert len(prof.recorded) == 1
        finally:
            set_default_profiler(previous)
        sim2 = Simulator()
        sim2.schedule(0.1, lambda: None)
        sim2.run_until(1.0)
        assert len(prof.recorded) == 1  # restored: no further reports
