"""Unit and property tests for propagation models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.phy.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    dbm_to_mw,
    mw_to_dbm,
)


class TestPowerConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_round_trip(self):
        assert mw_to_dbm(dbm_to_mw(-63.2)) == pytest.approx(-63.2)

    def test_zero_mw_is_minus_infinity(self):
        assert mw_to_dbm(0.0) == float("-inf")

    @given(st.floats(min_value=-150.0, max_value=50.0))
    def test_conversion_round_trip_property(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)

    @given(st.floats(min_value=-150.0, max_value=50.0), st.floats(min_value=-150.0, max_value=50.0))
    def test_dbm_ordering_preserved_in_mw(self, a, b):
        if a < b:
            assert dbm_to_mw(a) <= dbm_to_mw(b)


class TestFreeSpace:
    def test_loss_increases_with_distance(self):
        model = FreeSpacePathLoss()
        assert model.path_loss_db(100.0) > model.path_loss_db(10.0)

    def test_loss_follows_20db_per_decade(self):
        model = FreeSpacePathLoss()
        delta = model.path_loss_db(100.0) - model.path_loss_db(10.0)
        assert delta == pytest.approx(20.0, abs=1e-6)

    def test_minimum_distance_clamp(self):
        model = FreeSpacePathLoss(min_distance_m=1.0)
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)


class TestLogDistance:
    def test_loss_follows_exponent(self):
        model = LogDistancePathLoss(exponent=3.0, shadowing_sigma_db=0.0)
        delta = model.path_loss_db(100.0) - model.path_loss_db(10.0)
        assert delta == pytest.approx(30.0, abs=1e-6)

    def test_shadowing_is_deterministic_per_link(self):
        model = LogDistancePathLoss(shadowing_sigma_db=8.0, seed=3)
        first = model.path_loss_db(50.0, link_key=(1, 2))
        second = model.path_loss_db(50.0, link_key=(1, 2))
        assert first == second

    def test_shadowing_is_symmetric(self):
        model = LogDistancePathLoss(shadowing_sigma_db=8.0, seed=3)
        assert model.path_loss_db(50.0, (1, 2)) == model.path_loss_db(50.0, (2, 1))

    def test_shadowing_differs_across_links(self):
        model = LogDistancePathLoss(shadowing_sigma_db=8.0, seed=3)
        losses = {model.path_loss_db(50.0, (1, other)) for other in range(2, 12)}
        assert len(losses) > 1

    def test_zero_sigma_removes_shadowing(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        assert model.path_loss_db(50.0, (1, 2)) == model.path_loss_db(50.0, (3, 4))

    def test_received_power_decreases_with_distance(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        near = model.received_power_dbm(19.0, 10.0)
        far = model.received_power_dbm(19.0, 200.0)
        assert near > far

    @given(st.floats(min_value=1.0, max_value=2000.0), st.floats(min_value=1.0, max_value=2000.0))
    def test_monotone_in_distance(self, d1, d2):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        if d1 < d2:
            assert model.path_loss_db(d1) <= model.path_loss_db(d2)
        if math.isclose(d1, d2):
            assert model.path_loss_db(d1) == pytest.approx(model.path_loss_db(d2))
