"""Unit tests for PHY rates and frame airtime."""

import math

import pytest

from repro.phy.radio import (
    PHY_OVERHEAD_S,
    RATE_1MBPS,
    RATE_11MBPS,
    RATE_TABLE,
    RadioConfig,
    frame_airtime,
    rate_from_mbps,
)


class TestPhyRates:
    def test_rate_table_contains_paper_rates(self):
        assert 1 in RATE_TABLE and 11 in RATE_TABLE

    def test_rate_lookup(self):
        assert rate_from_mbps(1) is RATE_1MBPS
        assert rate_from_mbps(11) is RATE_11MBPS

    def test_rate_lookup_unknown(self):
        with pytest.raises(KeyError):
            rate_from_mbps(54)

    def test_higher_rates_need_more_sinr(self):
        assert RATE_11MBPS.min_sinr_db > RATE_1MBPS.min_sinr_db

    def test_higher_rates_have_worse_sensitivity(self):
        assert RATE_11MBPS.rx_sensitivity_dbm > RATE_1MBPS.rx_sensitivity_dbm


class TestFrameAirtime:
    def test_airtime_includes_phy_overhead(self):
        assert frame_airtime(0, RATE_11MBPS) == pytest.approx(PHY_OVERHEAD_S)

    def test_airtime_scales_with_size(self):
        small = frame_airtime(100, RATE_11MBPS)
        large = frame_airtime(200, RATE_11MBPS)
        assert large - small == pytest.approx(100 * 8 / RATE_11MBPS.bps)

    def test_airtime_slower_rate_is_longer(self):
        assert frame_airtime(1500, RATE_1MBPS) > frame_airtime(1500, RATE_11MBPS)

    def test_1500_bytes_at_1mbps_is_about_12ms(self):
        airtime = frame_airtime(1500, RATE_1MBPS)
        assert math.isclose(airtime, PHY_OVERHEAD_S + 0.012, rel_tol=1e-9)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            frame_airtime(-1, RATE_1MBPS)


class TestRadioConfig:
    def test_defaults_match_paper(self):
        config = RadioConfig()
        assert config.tx_power_dbm == pytest.approx(19.0)
        assert config.antenna_gain_dbi == pytest.approx(5.0)

    def test_eirp_includes_antenna_gain(self):
        config = RadioConfig(tx_power_dbm=19.0, antenna_gain_dbi=5.0)
        assert config.eirp_dbm == pytest.approx(24.0)
