"""Tests for SINR computation, the capture model and error models."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.error_models import (
    BerPacketErrorModel,
    FixedPacketErrorModel,
    SnrThresholdErrorModel,
)
from repro.phy.propagation import dbm_to_mw
from repro.phy.radio import RATE_1MBPS, RATE_11MBPS
from repro.phy.sinr import NOISE_FLOOR_DBM, CaptureModel, sinr_db, snr_db


class TestSinr:
    def test_no_interference_equals_snr(self):
        assert sinr_db(-70.0, 0.0) == pytest.approx(snr_db(-70.0))

    def test_interference_lowers_sinr(self):
        assert sinr_db(-70.0, dbm_to_mw(-80.0)) < sinr_db(-70.0, 0.0)

    def test_dominant_interference(self):
        # Interference much stronger than noise: SINR ~ SIR.
        value = sinr_db(-60.0, dbm_to_mw(-70.0))
        assert value == pytest.approx(10.0, abs=0.2)

    @given(st.floats(min_value=0.0, max_value=1e-3))
    def test_monotone_in_interference(self, extra_mw):
        base = sinr_db(-65.0, 1e-9)
        assert sinr_db(-65.0, 1e-9 + extra_mw) <= base + 1e-9


class TestCaptureModel:
    def test_strong_signal_captures(self):
        capture = CaptureModel()
        assert capture.decodable(-60.0, dbm_to_mw(-80.0), RATE_11MBPS)

    def test_weak_signal_does_not_capture(self):
        capture = CaptureModel()
        assert not capture.decodable(-80.0, dbm_to_mw(-75.0), RATE_11MBPS)

    def test_capture_easier_at_low_rate(self):
        """A marginal SINR that fails at 11 Mb/s can succeed at 1 Mb/s."""
        capture = CaptureModel()
        signal, interference = -70.0, dbm_to_mw(-76.0)
        assert capture.decodable(signal, interference, RATE_1MBPS)
        assert not capture.decodable(signal, interference, RATE_11MBPS)

    def test_below_sensitivity_never_decodes(self):
        capture = CaptureModel()
        assert not capture.decodable(RATE_1MBPS.rx_sensitivity_dbm - 1.0, 0.0, RATE_1MBPS)

    def test_margin_makes_capture_harder(self):
        strict = CaptureModel(sinr_margin_db=6.0)
        loose = CaptureModel(sinr_margin_db=0.0)
        signal, interference = -70.0, dbm_to_mw(-78.0)
        assert loose.decodable(signal, interference, RATE_1MBPS)
        assert not strict.decodable(signal, interference, RATE_1MBPS)


class TestErrorModels:
    def test_fixed_model_returns_constant(self):
        model = FixedPacketErrorModel(per=0.2)
        assert model.packet_error_probability(30.0, RATE_11MBPS, 1500) == pytest.approx(0.2)

    def test_fixed_model_validates_range(self):
        with pytest.raises(ValueError):
            FixedPacketErrorModel(per=1.5)

    def test_threshold_model(self):
        model = SnrThresholdErrorModel()
        assert model.packet_error_probability(30.0, RATE_11MBPS, 1500) == 0.0
        assert model.packet_error_probability(0.0, RATE_11MBPS, 1500) == 1.0

    def test_ber_model_monotone_in_snr(self):
        model = BerPacketErrorModel()
        high = model.packet_error_probability(35.0, RATE_11MBPS, 1500)
        low = model.packet_error_probability(12.0, RATE_11MBPS, 1500)
        assert high < low

    def test_ber_model_monotone_in_length(self):
        model = BerPacketErrorModel()
        short = model.packet_error_probability(16.0, RATE_11MBPS, 100)
        long = model.packet_error_probability(16.0, RATE_11MBPS, 1500)
        assert short <= long

    def test_ber_model_bounds(self):
        model = BerPacketErrorModel()
        for snr in (-10.0, 0.0, 10.0, 25.0, 60.0):
            per = model.packet_error_probability(snr, RATE_1MBPS, 1500)
            assert 0.0 <= per <= 1.0

    @given(st.floats(min_value=-20.0, max_value=60.0))
    def test_ber_model_per_always_valid(self, snr):
        model = BerPacketErrorModel()
        per = model.packet_error_probability(snr, RATE_11MBPS, 1500)
        assert 0.0 <= per <= 1.0

    def test_noise_floor_constant_is_reasonable(self):
        assert -100.0 < NOISE_FLOOR_DBM < -85.0
