"""Integration tests for the DCF MAC and the wireless medium.

These use tiny simulations (a second or less of virtual time) so the full
suite stays fast while still exercising carrier sensing, ACKs,
retransmissions, broadcast, capture and channel errors end to end.
"""

import pytest

from repro.engine import Simulator
from repro.mac.constants import DEFAULT_MAC_CONFIG
from repro.mac.dcf import DcfMac
from repro.mac.frames import BROADCAST_ADDR, Frame, FrameKind
from repro.mac.medium import WirelessMedium
from repro.mac.nominal import nominal_throughput_bps
from repro.phy.error_models import FixedPacketErrorModel
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.radio import RATE_11MBPS, RadioConfig
from repro.sim import MeshNetwork, carrier_sense_pair, no_shadowing_propagation
from repro.sim.measurement import measure_flows, measure_isolated


def _make_pair(error_per: float = 0.0, distance: float = 40.0, seed: int = 1):
    """Two nodes within range; returns (sim, medium, mac0, mac1, received)."""
    sim = Simulator(seed=seed)
    medium = WirelessMedium(
        sim,
        {0: (0.0, 0.0), 1: (distance, 0.0)},
        radio=RadioConfig(data_rate=RATE_11MBPS),
        propagation=LogDistancePathLoss(shadowing_sigma_db=0.0),
        error_model=FixedPacketErrorModel(per=error_per),
    )
    received = []
    mac0 = DcfMac(0, sim, medium)
    mac1 = DcfMac(
        1, sim, medium, rx_callback=lambda payload, src, frame: received.append(payload)
    )
    return sim, medium, mac0, mac1, received


def _data_frame(src: int, dst: int, payload="x", size=1500) -> Frame:
    return Frame(kind=FrameKind.DATA, src=src, dst=dst, size_bytes=size, rate=RATE_11MBPS, payload=payload)


class TestUnicastDelivery:
    def test_single_frame_delivered_and_acked(self):
        sim, medium, mac0, mac1, received = _make_pair()
        mac0.enqueue(_data_frame(0, 1, payload="hello"))
        sim.run_until(0.1)
        assert received == ["hello"]
        assert mac0.stats.successes == 1
        assert mac1.stats.acks_sent == 1

    def test_frames_delivered_in_order(self):
        sim, medium, mac0, mac1, received = _make_pair()
        for i in range(5):
            mac0.enqueue(_data_frame(0, 1, payload=i))
        sim.run_until(0.2)
        assert received == [0, 1, 2, 3, 4]

    def test_queue_limit_drops_excess(self):
        sim, medium, mac0, mac1, received = _make_pair()
        for i in range(DEFAULT_MAC_CONFIG.queue_limit + 20):
            mac0.enqueue(_data_frame(0, 1, payload=i))
        assert mac0.stats.queue_drops > 0

    def test_lossy_link_triggers_retransmissions(self):
        sim, medium, mac0, mac1, received = _make_pair(error_per=0.4, seed=3)
        for i in range(20):
            mac0.enqueue(_data_frame(0, 1, payload=i))
        sim.run_until(1.0)
        assert mac0.stats.retransmissions > 0
        assert len(received) > 0

    def test_totally_broken_link_drops_after_retry_limit(self):
        sim, medium, mac0, mac1, received = _make_pair(error_per=1.0)
        mac0.enqueue(_data_frame(0, 1))
        sim.run_until(2.0)
        assert received == []
        assert mac0.stats.retry_drops == 1
        # retry_limit + 1 attempts in total.
        assert mac0.stats.attempts == DEFAULT_MAC_CONFIG.retry_limit + 1

    def test_out_of_range_destination_never_delivers(self):
        sim, medium, mac0, mac1, received = _make_pair(distance=5000.0)
        mac0.enqueue(_data_frame(0, 1))
        sim.run_until(2.0)
        assert received == []
        assert mac0.stats.retry_drops == 1


class TestBroadcast:
    def test_broadcast_delivered_without_ack(self):
        sim, medium, mac0, mac1, received = _make_pair()
        frame = Frame(
            kind=FrameKind.BROADCAST,
            src=0,
            dst=BROADCAST_ADDR,
            size_bytes=1500,
            rate=RATE_11MBPS,
            payload="probe",
        )
        mac0.enqueue(frame)
        sim.run_until(0.1)
        assert received == ["probe"]
        assert mac1.stats.acks_sent == 0
        assert mac0.stats.broadcasts_sent == 1

    def test_broadcast_never_retransmitted(self):
        sim, medium, mac0, mac1, received = _make_pair(error_per=1.0)
        frame = Frame(
            kind=FrameKind.BROADCAST,
            src=0,
            dst=BROADCAST_ADDR,
            size_bytes=1500,
            rate=RATE_11MBPS,
            payload="probe",
        )
        mac0.enqueue(frame)
        sim.run_until(0.5)
        assert received == []
        assert mac0.stats.attempts == 1


class TestMediumBehaviour:
    def test_carrier_sense_relation(self):
        sim, medium, mac0, mac1, _ = _make_pair(distance=40.0)
        assert medium.can_sense(0, 1)
        far = WirelessMedium(
            Simulator(),
            {0: (0.0, 0.0), 1: (5000.0, 0.0)},
            propagation=LogDistancePathLoss(shadowing_sigma_db=0.0),
        )
        assert not far.can_sense(0, 1)

    def test_rx_power_symmetric_and_cached(self):
        sim, medium, mac0, mac1, _ = _make_pair()
        assert medium.rx_power_dbm(0, 1) == pytest.approx(medium.rx_power_dbm(1, 0))
        assert medium.rx_power_dbm(0, 1) is not None

    def test_cannot_transmit_twice_simultaneously(self):
        sim, medium, mac0, mac1, _ = _make_pair()
        medium.begin_transmission(0, _data_frame(0, 1))
        with pytest.raises(RuntimeError):
            medium.begin_transmission(0, _data_frame(0, 1))

    def test_loss_reasons_are_recorded(self):
        sim, medium, mac0, mac1, received = _make_pair(error_per=1.0)
        mac0.enqueue(_data_frame(0, 1))
        sim.run_until(1.0)
        assert medium.loss_counts["channel"] > 0


class TestSaturationThroughput:
    def test_isolated_link_matches_nominal(self, cs_pair_network):
        """A backlogged clean link achieves the Jun et al. nominal throughput."""
        flow = cs_pair_network.add_udp_flow([0, 1], payload_bytes=1470)
        measurement = measure_isolated(cs_pair_network, flow, duration_s=2.0)
        nominal = nominal_throughput_bps(1470, RATE_11MBPS)
        assert measurement.throughput_bps == pytest.approx(nominal, rel=0.05)

    def test_carrier_sense_pair_time_shares(self, cs_pair_network):
        """Two CS links together each get roughly half their isolated rate."""
        f1 = cs_pair_network.add_udp_flow([0, 1], payload_bytes=1470)
        f2 = cs_pair_network.add_udp_flow([2, 3], payload_bytes=1470)
        alone = measure_isolated(cs_pair_network, f1, duration_s=1.5)
        together = measure_flows(cs_pair_network, [f1, f2], duration_s=1.5)
        total_together = sum(m.throughput_bps for m in together)
        assert total_together < 1.35 * alone.throughput_bps
        # Neither link starves under mutual carrier sensing.
        assert min(m.throughput_bps for m in together) > 0.2 * alone.throughput_bps

    def test_determinism_across_identical_runs(self):
        def run_once():
            topo = carrier_sense_pair()
            net = MeshNetwork(
                topo.positions, seed=42, propagation=no_shadowing_propagation(), data_rate_mbps=11
            )
            flow = net.add_udp_flow([0, 1])
            return measure_isolated(net, flow, duration_s=1.0).throughput_bps

        assert run_once() == pytest.approx(run_once(), rel=1e-12)
