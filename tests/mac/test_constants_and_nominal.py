"""Tests for MAC constants and the nominal-throughput calculator."""

import pytest

from repro.mac.constants import DEFAULT_MAC_CONFIG, MacConfig
from repro.mac.nominal import nominal_cycle_breakdown, nominal_throughput_bps
from repro.phy.radio import RATE_1MBPS, RATE_11MBPS


class TestMacConfig:
    def test_defaults_match_802_11bg(self):
        config = DEFAULT_MAC_CONFIG
        assert config.slot_s == pytest.approx(20e-6)
        assert config.sifs_s == pytest.approx(10e-6)
        assert config.difs_s == pytest.approx(50e-6)
        assert config.cw_min == 31
        assert config.cw_max == 1023

    def test_w0_and_wmax(self):
        assert DEFAULT_MAC_CONFIG.w0 == 32
        assert DEFAULT_MAC_CONFIG.wmax == 1024

    def test_max_backoff_stage(self):
        # 31 -> 63 -> 127 -> 255 -> 511 -> 1023: five doublings.
        assert DEFAULT_MAC_CONFIG.max_backoff_stage == 5

    def test_custom_config_stage(self):
        config = MacConfig(cw_min=15, cw_max=255)
        assert config.max_backoff_stage == 4


class TestNominalThroughput:
    def test_cycle_components_positive(self):
        breakdown = nominal_cycle_breakdown(1470, RATE_11MBPS)
        assert breakdown.difs_s > 0
        assert breakdown.avg_backoff_s > 0
        assert breakdown.data_airtime_s > 0
        assert breakdown.ack_airtime_s > 0
        assert breakdown.cycle_s == pytest.approx(
            breakdown.difs_s
            + breakdown.avg_backoff_s
            + breakdown.data_airtime_s
            + breakdown.sifs_s
            + breakdown.ack_airtime_s
        )

    def test_11mbps_1470_bytes_near_6mbps(self):
        """The well-known TMT of 802.11b at 11 Mb/s with 1470-byte UDP is ~6 Mb/s."""
        throughput = nominal_throughput_bps(1470, RATE_11MBPS)
        assert 5.0e6 < throughput < 6.5e6

    def test_1mbps_1470_bytes_near_0_9mbps(self):
        throughput = nominal_throughput_bps(1470, RATE_1MBPS)
        assert 0.8e6 < throughput < 0.95e6

    def test_nominal_below_phy_rate(self):
        assert nominal_throughput_bps(1470, RATE_11MBPS) < RATE_11MBPS.bps
        assert nominal_throughput_bps(1470, RATE_1MBPS) < RATE_1MBPS.bps

    def test_larger_payload_more_efficient(self):
        small = nominal_throughput_bps(200, RATE_11MBPS)
        large = nominal_throughput_bps(1470, RATE_11MBPS)
        assert large > small

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            nominal_throughput_bps(0, RATE_11MBPS)
