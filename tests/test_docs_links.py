"""Every relative link in README.md and docs/*.md must resolve.

Markdown links rot silently — this suite walks ``[text](target)`` links
in the documentation and checks that relative targets exist on disk and
that intra-document anchors point at a real heading.  External links
(``http(s)://``, ``mailto:``) are out of scope: checking them would make
the suite network-dependent.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must resolve too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_files() -> list[Path]:
    docs = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    assert len(docs) >= 4, "documentation suite went missing"
    return docs


def heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchor slugs of every heading in ``markdown``."""
    anchors = set()
    for heading in _HEADING.findall(markdown):
        slug = re.sub(r"[^\w\s-]", "", heading.strip().lower())
        anchors.add(re.sub(r"[\s]+", "-", slug))
    return anchors


def links_of(path: Path) -> list[str]:
    return _LINK.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("doc", doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in links_of(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if path_part and not resolved.exists():
            broken.append(target)
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved.read_text(encoding="utf-8")):
                broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


def test_docs_are_cross_linked():
    """The docs pages must reference each other and be reachable from
    the README, so readers can navigate without guessing file names."""
    readme_links = set(links_of(REPO_ROOT / "README.md"))
    for page in ("architecture.md", "experiment-api.md", "reproducing-figures.md"):
        assert any(page in link for link in readme_links), f"README misses {page}"
